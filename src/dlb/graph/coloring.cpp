#include "dlb/graph/coloring.hpp"

#include <algorithm>

namespace dlb {

bool is_proper_edge_coloring(const graph& g, const edge_coloring& c) {
  if (static_cast<edge_id>(c.color.size()) != g.num_edges()) return false;
  for (const int col : c.color) {
    if (col < 0 || col >= c.num_colors) return false;
  }
  for (node_id i = 0; i < g.num_nodes(); ++i) {
    std::vector<char> seen(static_cast<size_t>(c.num_colors), 0);
    for (const incidence& inc : g.neighbors(i)) {
      const int col = c.color[static_cast<size_t>(inc.edge)];
      if (seen[static_cast<size_t>(col)]) return false;
      seen[static_cast<size_t>(col)] = 1;
    }
  }
  return true;
}

edge_coloring greedy_edge_coloring(const graph& g) {
  // First-fit: each edge sees at most 2(Δ-1) occupied colours, so colour
  // 2Δ-1 is always available.
  const int cap = std::max(1, 2 * g.max_degree() - 1);
  edge_coloring out;
  out.color.assign(static_cast<size_t>(g.num_edges()), -1);
  std::vector<std::vector<char>> used(
      static_cast<size_t>(g.num_nodes()),
      std::vector<char>(static_cast<size_t>(cap), 0));
  for (edge_id e = 0; e < g.num_edges(); ++e) {
    const edge& ed = g.endpoints(e);
    auto& uu = used[static_cast<size_t>(ed.u)];
    auto& uv = used[static_cast<size_t>(ed.v)];
    int col = 0;
    while (uu[static_cast<size_t>(col)] || uv[static_cast<size_t>(col)]) ++col;
    DLB_ASSERT(col < cap);
    out.color[static_cast<size_t>(e)] = col;
    uu[static_cast<size_t>(col)] = 1;
    uv[static_cast<size_t>(col)] = 1;
    out.num_colors = std::max(out.num_colors, col + 1);
  }
  DLB_ENSURES(is_proper_edge_coloring(g, out));
  return out;
}

namespace {

/// Working state for the Misra–Gries algorithm.
class mg_state {
 public:
  explicit mg_state(const graph& g)
      : g_(g),
        max_colors_(g.max_degree() + 1),
        color_(static_cast<size_t>(g.num_edges()), -1),
        at_(static_cast<size_t>(g.num_nodes()),
            std::vector<edge_id>(static_cast<size_t>(max_colors_),
                                 invalid_edge)) {}

  [[nodiscard]] bool is_free(node_id x, int c) const {
    return at_[static_cast<size_t>(x)][static_cast<size_t>(c)] == invalid_edge;
  }

  [[nodiscard]] int free_color(node_id x) const {
    for (int c = 0; c < max_colors_; ++c) {
      if (is_free(x, c)) return c;
    }
    throw contract_violation("misra_gries: no free colour (internal bug)");
  }

  [[nodiscard]] int color_of(edge_id e) const {
    return color_[static_cast<size_t>(e)];
  }

  [[nodiscard]] edge_id edge_at(node_id x, int c) const {
    return at_[static_cast<size_t>(x)][static_cast<size_t>(c)];
  }

  void uncolor(edge_id e) {
    const int old = color_[static_cast<size_t>(e)];
    if (old < 0) return;
    const edge& ed = g_.endpoints(e);
    at_[static_cast<size_t>(ed.u)][static_cast<size_t>(old)] = invalid_edge;
    at_[static_cast<size_t>(ed.v)][static_cast<size_t>(old)] = invalid_edge;
    color_[static_cast<size_t>(e)] = -1;
  }

  void assign(edge_id e, int c) {
    DLB_ASSERT(color_[static_cast<size_t>(e)] < 0);
    const edge& ed = g_.endpoints(e);
    DLB_ASSERT(is_free(ed.u, c) && is_free(ed.v, c));
    at_[static_cast<size_t>(ed.u)][static_cast<size_t>(c)] = e;
    at_[static_cast<size_t>(ed.v)][static_cast<size_t>(c)] = e;
    color_[static_cast<size_t>(e)] = c;
  }

  [[nodiscard]] std::vector<int> take_colors() && { return std::move(color_); }
  [[nodiscard]] int max_colors() const { return max_colors_; }

 private:
  const graph& g_;
  int max_colors_;
  std::vector<int> color_;
  std::vector<std::vector<edge_id>> at_;  // at_[v][c]: edge coloured c at v
};

}  // namespace

edge_coloring misra_gries_edge_coloring(const graph& g) {
  mg_state st(g);

  std::vector<char> in_fan(static_cast<size_t>(g.num_nodes()), 0);

  for (edge_id e0 = 0; e0 < g.num_edges(); ++e0) {
    const node_id u = g.endpoints(e0).u;
    const node_id v = g.endpoints(e0).v;

    // Build a maximal fan of u starting at v: each next fan vertex w has a
    // coloured edge (u,w) whose colour is free on the previous fan vertex.
    std::vector<node_id> fan{v};
    std::vector<edge_id> fan_edge{e0};
    in_fan[static_cast<size_t>(v)] = 1;
    bool extended = true;
    while (extended) {
      extended = false;
      for (const incidence& inc : g.neighbors(u)) {
        if (in_fan[static_cast<size_t>(inc.neighbor)]) continue;
        const int col = st.color_of(inc.edge);
        if (col >= 0 && st.is_free(fan.back(), col)) {
          fan.push_back(inc.neighbor);
          fan_edge.push_back(inc.edge);
          in_fan[static_cast<size_t>(inc.neighbor)] = 1;
          extended = true;
          break;
        }
      }
    }

    const int c = st.free_color(u);
    const int d = st.free_color(fan.back());

    if (c != d) {
      // Invert the cd-path through u: the maximal path starting at u whose
      // edges alternate colours d, c, d, ... Swapping c and d along it makes
      // d free on u while preserving properness.
      std::vector<edge_id> path;
      node_id x = u;
      int want = d;
      while (st.edge_at(x, want) != invalid_edge) {
        const edge_id pe = st.edge_at(x, want);
        path.push_back(pe);
        x = g.other_endpoint(pe, x);
        want = (want == d) ? c : d;
      }
      // Uncolour first, then reassign flipped colours, so the lookup tables
      // never transiently hold two edges of one colour at a vertex.
      std::vector<int> flipped(path.size());
      for (std::size_t k = 0; k < path.size(); ++k) {
        flipped[k] = (st.color_of(path[k]) == d) ? c : d;
        // (record before uncolouring below)
      }
      for (const edge_id pe : path) st.uncolor(pe);
      for (std::size_t k = 0; k < path.size(); ++k) {
        st.assign(path[k], flipped[k]);
      }
    }
    DLB_ASSERT(st.is_free(u, d));

    // Find w = fan[i] such that fan[0..i] is still a fan (post-inversion) and
    // d is free on w; rotate that prefix and colour (u,w) with d.
    std::size_t w = fan.size();  // sentinel: not found
    for (std::size_t i = 0; i < fan.size(); ++i) {
      // Prefix fan validity: colour of (u, fan[i]) must be free on fan[i-1].
      if (i > 0) {
        const int ci = st.color_of(fan_edge[i]);
        if (ci < 0 || !st.is_free(fan[i - 1], ci)) break;
      }
      if (st.is_free(fan[i], d)) {
        w = i;
        break;
      }
    }
    DLB_ASSERT(w < fan.size());

    // Rotate: shift each fan edge's colour to its predecessor, give d to w.
    std::vector<int> cols(w + 1);
    for (std::size_t j = 0; j <= w; ++j) cols[j] = st.color_of(fan_edge[j]);
    for (std::size_t j = 0; j <= w; ++j) st.uncolor(fan_edge[j]);
    for (std::size_t j = 0; j < w; ++j) st.assign(fan_edge[j], cols[j + 1]);
    st.assign(fan_edge[w], d);

    for (const node_id f : fan) in_fan[static_cast<size_t>(f)] = 0;
  }

  edge_coloring out;
  out.num_colors = st.max_colors();
  out.color = std::move(st).take_colors();
  // Compact: drop trailing unused colours.
  int used_max = 0;
  for (const int col : out.color) used_max = std::max(used_max, col + 1);
  out.num_colors = used_max;
  DLB_ENSURES(is_proper_edge_coloring(g, out));
  return out;
}

std::vector<matching> to_matchings(const graph& g, const edge_coloring& c) {
  DLB_EXPECTS(is_proper_edge_coloring(g, c));
  std::vector<matching> out(static_cast<size_t>(c.num_colors));
  for (edge_id e = 0; e < g.num_edges(); ++e) {
    out[static_cast<size_t>(c.color[static_cast<size_t>(e)])].push_back(e);
  }
  return out;
}

}  // namespace dlb
