// Graph families used throughout the paper's comparison tables:
// hypercubes, r-dimensional tori, constant-degree expanders (random regular
// graphs), and "arbitrary" low-expansion graphs (ring of cliques, lollipop),
// plus small standard families for unit tests.
#pragma once

#include <cstdint>
#include <vector>

#include "dlb/graph/graph.hpp"

namespace dlb::generators {

/// Path 0-1-...-(n-1). n >= 2.
[[nodiscard]] graph path(node_id n);

/// Cycle on n nodes. n >= 3.
[[nodiscard]] graph cycle(node_id n);

/// Complete graph K_n. n >= 2.
[[nodiscard]] graph complete(node_id n);

/// Star with one hub (node 0) and n-1 leaves. n >= 2.
[[nodiscard]] graph star(node_id n);

/// d-dimensional hypercube on 2^dim nodes; node labels are bit strings and
/// neighbors differ in exactly one bit. dim >= 1.
[[nodiscard]] graph hypercube(int dim);

/// r-dimensional grid with side lengths `sides`; `wrap` makes it a torus.
/// Side lengths must be >= 2; a wrapped side of length 2 would create a
/// parallel edge, so wrap requires all sides >= 3.
[[nodiscard]] graph grid(const std::vector<node_id>& sides, bool wrap);

/// 2-dimensional torus with side `side` (side*side nodes, 4-regular).
[[nodiscard]] graph torus_2d(node_id side);

/// r-dimensional torus with equal sides.
[[nodiscard]] graph torus(int r, node_id side);

/// Random d-regular graph via the configuration model with rejection of
/// self-loops/multi-edges; retries until simple and connected. Requires
/// n*d even, d < n. These are expanders w.h.p. for d >= 3.
[[nodiscard]] graph random_regular(node_id n, node_id d, std::uint64_t seed);

/// Erdős–Rényi G(n, p), resampled until connected.
[[nodiscard]] graph erdos_renyi_connected(node_id n, double p,
                                          std::uint64_t seed);

/// `num_cliques` cliques of size `clique_size` arranged in a ring, adjacent
/// cliques joined by a single bridge edge. A classic low-expansion
/// ("arbitrary graph") instance: lambda -> 1 as the ring grows.
[[nodiscard]] graph ring_of_cliques(node_id num_cliques, node_id clique_size);

/// Lollipop: clique of size `clique_size` with a path of `path_len` nodes
/// attached. Extremely poor expansion.
[[nodiscard]] graph lollipop(node_id clique_size, node_id path_len);

/// Barbell: two cliques of size `clique_size` joined by a path of
/// `path_len` intermediate nodes (path_len >= 0).
[[nodiscard]] graph barbell(node_id clique_size, node_id path_len);

/// Complete binary tree with `levels` levels (2^levels - 1 nodes).
[[nodiscard]] graph complete_binary_tree(int levels);

}  // namespace dlb::generators
