// Matchings: the communication pattern of dimension-exchange balancing.
//
// In the matching model (paper §2.1) each round restricts load transfer to
// the edges of a matching. Two classic schedules exist:
//  * periodic matchings — a fixed set of matchings covering E, used
//    round-robin (Hosseini et al.; built here via edge colouring), and
//  * random matchings  — a fresh random maximal matching each round
//    (Ghosh–Muthukrishnan).
#pragma once

#include <cstdint>
#include <vector>

#include "dlb/common/rng.hpp"
#include "dlb/graph/graph.hpp"

namespace dlb {

/// A matching is a set of edge ids, pairwise non-incident.
using matching = std::vector<edge_id>;

/// True iff `m` is a valid matching of `g` (distinct edges, no shared node).
[[nodiscard]] bool is_matching(const graph& g, const matching& m);

/// Samples a random maximal matching: scan a uniformly random permutation of
/// E and greedily keep every edge whose endpoints are still free. Maximal
/// (no edge can be added), and every edge appears with probability >= 1/(2d).
[[nodiscard]] matching random_maximal_matching(const graph& g, rng_t& rng);

/// Convenience: seeded deterministic variant, used to couple randomized
/// process instances (Definition 3, footnote 6: coupled runs see the same
/// matching sequence).
[[nodiscard]] matching random_maximal_matching(const graph& g,
                                               std::uint64_t seed,
                                               std::uint64_t round);

}  // namespace dlb
