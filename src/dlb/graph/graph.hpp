// Immutable undirected graph with CSR adjacency and stable edge ids.
//
// The network model of the paper (§3): G = (V, E) undirected, V = {0..n-1}.
// Every component of dlb operates on this type. Edges are normalized so that
// endpoint u < v; the pair (u, v) also fixes the *positive flow orientation*
// used by flow ledgers (flow u→v is positive, v→u negative).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dlb/common/contracts.hpp"
#include "dlb/common/types.hpp"

namespace dlb {

/// One endpoint record in the adjacency structure.
struct incidence {
  node_id neighbor;  ///< the node on the other side of the edge
  edge_id edge;      ///< id of the connecting edge
};

/// An undirected edge with normalized endpoints (u < v).
struct edge {
  node_id u;
  node_id v;
};

inline bool operator==(const edge& a, const edge& b) {
  return a.u == b.u && a.v == b.v;
}

/// Immutable undirected simple graph.
///
/// Invariants: no self-loops, no parallel edges, all endpoints in [0, n).
/// Construction validates and throws contract_violation on bad input.
class graph {
 public:
  /// Builds a graph on `n` nodes from an edge list. Edges may be given in
  /// either endpoint order; duplicates (in any order) are rejected.
  graph(node_id n, std::vector<edge> edges);

  /// Number of nodes.
  [[nodiscard]] node_id num_nodes() const noexcept { return n_; }

  /// Number of edges.
  [[nodiscard]] edge_id num_edges() const noexcept {
    return static_cast<edge_id>(edges_.size());
  }

  /// Degree of node `i`.
  [[nodiscard]] node_id degree(node_id i) const {
    DLB_EXPECTS(i >= 0 && i < n_);
    return static_cast<node_id>(offsets_[static_cast<size_t>(i) + 1] -
                                offsets_[static_cast<size_t>(i)]);
  }

  /// Maximum degree d of the graph (paper notation: d).
  [[nodiscard]] node_id max_degree() const noexcept { return max_degree_; }

  /// Neighbors of `i` with the connecting edge ids.
  [[nodiscard]] std::span<const incidence> neighbors(node_id i) const {
    DLB_EXPECTS(i >= 0 && i < n_);
    const auto lo = offsets_[static_cast<size_t>(i)];
    const auto hi = offsets_[static_cast<size_t>(i) + 1];
    return {adjacency_.data() + lo, adjacency_.data() + hi};
  }

  /// Endpoints of edge `e`, normalized (u < v).
  [[nodiscard]] const edge& endpoints(edge_id e) const {
    DLB_EXPECTS(e >= 0 && e < num_edges());
    return edges_[static_cast<size_t>(e)];
  }

  /// All edges, normalized and sorted by (u, v).
  [[nodiscard]] const std::vector<edge>& edges() const noexcept {
    return edges_;
  }

  /// The endpoint of `e` that is not `i`.
  [[nodiscard]] node_id other_endpoint(edge_id e, node_id i) const {
    const edge& ed = endpoints(e);
    DLB_EXPECTS(ed.u == i || ed.v == i);
    return ed.u == i ? ed.v : ed.u;
  }

  /// Edge id connecting `u` and `v`, or invalid_edge if absent. O(deg).
  [[nodiscard]] edge_id find_edge(node_id u, node_id v) const;

  /// True if `u` and `v` are adjacent.
  [[nodiscard]] bool has_edge(node_id u, node_id v) const {
    return find_edge(u, v) != invalid_edge;
  }

  /// True if the graph is connected (the balancing processes of the paper
  /// only converge to the global average on connected graphs).
  [[nodiscard]] bool is_connected() const;

  /// Graph diameter via BFS from every node. O(n·m); intended for tests and
  /// small experiment graphs.
  [[nodiscard]] node_id diameter() const;

 private:
  node_id n_ = 0;
  node_id max_degree_ = 0;
  std::vector<edge> edges_;
  std::vector<std::size_t> offsets_;   // CSR offsets, size n+1
  std::vector<incidence> adjacency_;   // CSR payload, size 2m
};

}  // namespace dlb
