#include "dlb/graph/graph.hpp"

#include <algorithm>
#include <queue>

namespace dlb {

graph::graph(node_id n, std::vector<edge> edges) : n_(n) {
  DLB_EXPECTS(n > 0);
  for (edge& e : edges) {
    DLB_EXPECTS(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n);
    DLB_EXPECTS(e.u != e.v);  // no self-loops
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const edge& a, const edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  const bool has_duplicate =
      std::adjacent_find(edges.begin(), edges.end()) != edges.end();
  DLB_EXPECTS(!has_duplicate);
  edges_ = std::move(edges);

  // Build CSR adjacency.
  std::vector<std::size_t> degree(static_cast<size_t>(n), 0);
  for (const edge& e : edges_) {
    ++degree[static_cast<size_t>(e.u)];
    ++degree[static_cast<size_t>(e.v)];
  }
  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (node_id i = 0; i < n; ++i) {
    offsets_[static_cast<size_t>(i) + 1] =
        offsets_[static_cast<size_t>(i)] + degree[static_cast<size_t>(i)];
    max_degree_ =
        std::max(max_degree_, static_cast<node_id>(degree[static_cast<size_t>(i)]));
  }
  adjacency_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (edge_id e = 0; e < num_edges(); ++e) {
    const edge& ed = edges_[static_cast<size_t>(e)];
    adjacency_[cursor[static_cast<size_t>(ed.u)]++] = {ed.v, e};
    adjacency_[cursor[static_cast<size_t>(ed.v)]++] = {ed.u, e};
  }
}

edge_id graph::find_edge(node_id u, node_id v) const {
  DLB_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v) return invalid_edge;
  // Scan the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  for (const incidence& inc : neighbors(u)) {
    if (inc.neighbor == v) return inc.edge;
  }
  return invalid_edge;
}

bool graph::is_connected() const {
  if (n_ == 1) return true;
  std::vector<char> seen(static_cast<size_t>(n_), 0);
  std::queue<node_id> frontier;
  frontier.push(0);
  seen[0] = 1;
  node_id reached = 1;
  while (!frontier.empty()) {
    const node_id i = frontier.front();
    frontier.pop();
    for (const incidence& inc : neighbors(i)) {
      if (!seen[static_cast<size_t>(inc.neighbor)]) {
        seen[static_cast<size_t>(inc.neighbor)] = 1;
        ++reached;
        frontier.push(inc.neighbor);
      }
    }
  }
  return reached == n_;
}

node_id graph::diameter() const {
  DLB_EXPECTS(is_connected());
  node_id best = 0;
  std::vector<node_id> dist(static_cast<size_t>(n_));
  for (node_id src = 0; src < n_; ++src) {
    std::fill(dist.begin(), dist.end(), invalid_node);
    std::queue<node_id> frontier;
    frontier.push(src);
    dist[static_cast<size_t>(src)] = 0;
    while (!frontier.empty()) {
      const node_id i = frontier.front();
      frontier.pop();
      for (const incidence& inc : neighbors(i)) {
        auto& dn = dist[static_cast<size_t>(inc.neighbor)];
        if (dn == invalid_node) {
          dn = dist[static_cast<size_t>(i)] + 1;
          best = std::max(best, dn);
          frontier.push(inc.neighbor);
        }
      }
    }
  }
  return best;
}

}  // namespace dlb
