// Spectral toolkit.
//
// The convergence theory of the paper's continuous processes is spectral:
//  * FOS balances in T = O(log(Kn)/(1-λ)) rounds, where λ is the
//    second-largest absolute eigenvalue of the diffusion matrix P,
//  * SOS with optimal β = 2/(1+sqrt(1-λ²)) balances in O(log(Kn)/sqrt(1-λ)),
//  * random matchings balance in O(d·log(Kn)/γ) where γ is the second
//    smallest eigenvalue of the graph Laplacian.
// We therefore need λ and γ. For heterogeneous speeds, P_{i,j} = α_{i,j}/s_i
// is not symmetric but is similar to the symmetric S^{1/2} P S^{-1/2}
// (S = diag(s)), so its spectrum is real; both estimators exploit this.
#pragma once

#include <vector>

#include "dlb/common/types.hpp"
#include "dlb/graph/graph.hpp"

namespace dlb {

/// Node speeds (paper §3): integer, >= 1, one per node.
using speed_vector = std::vector<weight_t>;

/// Returns a speed vector of all ones (the uniform-speed model).
[[nodiscard]] speed_vector uniform_speeds(node_id n);

/// Throws unless `s` has one entry >= 1 per node of `g`.
void validate_speeds(const graph& g, const speed_vector& s);

/// Dense symmetric eigensolver (cyclic Jacobi). `a` is row-major n*n and is
/// destroyed. Returns all eigenvalues in ascending order. O(n^3) — intended
/// for tests and small experiment graphs (n <= ~512).
[[nodiscard]] std::vector<real_t> symmetric_eigenvalues(std::vector<real_t> a,
                                                        node_id n);

/// Builds the dense diffusion matrix P with P_{i,j} = alpha_e / s_i for each
/// edge e = (i,j) and P_{i,i} = 1 - sum_j P_{i,j}. Row-major n*n.
[[nodiscard]] std::vector<real_t> dense_diffusion_matrix(
    const graph& g, const speed_vector& s, const std::vector<real_t>& alpha);

/// Second-largest absolute eigenvalue λ of the diffusion matrix, estimated by
/// power iteration on the symmetrized matrix with the stationary direction
/// deflated. `alpha` holds one α value per edge (symmetric by construction).
[[nodiscard]] real_t diffusion_lambda(const graph& g, const speed_vector& s,
                                      const std::vector<real_t>& alpha,
                                      int max_iterations = 20000,
                                      real_t tolerance = 1e-10);

/// Exact λ via the dense eigensolver; O(n^3), for tests / small graphs.
[[nodiscard]] real_t diffusion_lambda_dense(const graph& g,
                                            const speed_vector& s,
                                            const std::vector<real_t>& alpha);

/// Algebraic connectivity γ: second-smallest eigenvalue of the (unweighted)
/// Laplacian L = D - A, estimated by power iteration on 2Δ·I - L with the
/// constant vector deflated.
[[nodiscard]] real_t laplacian_gamma(const graph& g,
                                     int max_iterations = 20000,
                                     real_t tolerance = 1e-10);

/// Exact γ via the dense eigensolver; O(n^3), for tests / small graphs.
[[nodiscard]] real_t laplacian_gamma_dense(const graph& g);

}  // namespace dlb
