// Graph serialization: a plain edge-list text format and Graphviz DOT export.
//
// Edge-list format (whitespace/newline separated):
//   n m
//   u1 v1
//   ...
//   um vm
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dlb/common/types.hpp"
#include "dlb/graph/graph.hpp"

namespace dlb {

/// Writes `g` in edge-list format.
void write_edge_list(std::ostream& os, const graph& g);

/// Parses a graph from edge-list format; throws contract_violation on
/// malformed input (bad counts, out-of-range endpoints, duplicates...).
[[nodiscard]] graph read_edge_list(std::istream& is);

/// Graphviz DOT export. If `labels` is non-empty it must have one entry per
/// node (rendered as the node label; e.g. loads).
void write_dot(std::ostream& os, const graph& g,
               const std::vector<std::string>& labels = {});

}  // namespace dlb
