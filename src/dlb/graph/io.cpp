#include "dlb/graph/io.hpp"

#include <istream>
#include <ostream>

#include "dlb/common/contracts.hpp"

namespace dlb {

void write_edge_list(std::ostream& os, const graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (edge_id e = 0; e < g.num_edges(); ++e) {
    const edge& ed = g.endpoints(e);
    os << ed.u << ' ' << ed.v << '\n';
  }
}

graph read_edge_list(std::istream& is) {
  node_id n = 0;
  edge_id m = 0;
  if (!(is >> n >> m)) {
    throw contract_violation("read_edge_list: missing or malformed header");
  }
  if (n <= 0 || m < 0) {
    throw contract_violation("read_edge_list: invalid node/edge counts");
  }
  std::vector<edge> edges;
  edges.reserve(static_cast<size_t>(m));
  for (edge_id e = 0; e < m; ++e) {
    node_id u = 0, v = 0;
    if (!(is >> u >> v)) {
      throw contract_violation("read_edge_list: truncated edge list");
    }
    edges.push_back({u, v});
  }
  // graph's constructor validates ranges, self-loops, and duplicates.
  return graph(n, std::move(edges));
}

void write_dot(std::ostream& os, const graph& g,
               const std::vector<std::string>& labels) {
  DLB_EXPECTS(labels.empty() ||
              static_cast<node_id>(labels.size()) == g.num_nodes());
  os << "graph dlb {\n";
  if (!labels.empty()) {
    for (node_id i = 0; i < g.num_nodes(); ++i) {
      os << "  " << i << " [label=\"" << labels[static_cast<size_t>(i)]
         << "\"];\n";
    }
  }
  for (edge_id e = 0; e < g.num_edges(); ++e) {
    const edge& ed = g.endpoints(e);
    os << "  " << ed.u << " -- " << ed.v << ";\n";
  }
  os << "}\n";
}

}  // namespace dlb
