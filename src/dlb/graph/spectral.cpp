#include "dlb/graph/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "dlb/common/contracts.hpp"
#include "dlb/common/rng.hpp"

namespace dlb {

namespace {

using dvec = std::vector<real_t>;

real_t dot(const dvec& a, const dvec& b) {
  real_t s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

real_t norm(const dvec& a) { return std::sqrt(dot(a, a)); }

void axpy(dvec& y, real_t c, const dvec& x) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += c * x[i];
}

void scale(dvec& a, real_t c) {
  for (real_t& v : a) v *= c;
}

/// Generic deflated power iteration: returns the dominant |eigenvalue| of the
/// symmetric operator `matvec` restricted to the complement of unit vector
/// `deflate`.
template <typename MatVec>
real_t deflated_power_iteration(node_id n, const MatVec& matvec,
                                const dvec& deflate, int max_iterations,
                                real_t tolerance) {
  rng_t rng = make_rng(0x57EC7ULL);
  dvec x(static_cast<size_t>(n));
  for (real_t& v : x) v = uniform_real(rng, -1.0, 1.0);
  axpy(x, -dot(x, deflate), deflate);
  real_t nx = norm(x);
  DLB_ASSERT(nx > 0);
  scale(x, 1.0 / nx);

  dvec y(static_cast<size_t>(n));
  real_t prev = 0;
  for (int it = 0; it < max_iterations; ++it) {
    matvec(x, y);
    axpy(y, -dot(y, deflate), deflate);  // re-deflate against drift
    const real_t rayleigh = dot(x, y);
    const real_t ny = norm(y);
    if (ny < 1e-300) return 0.0;  // operator annihilates the complement
    scale(y, 1.0 / ny);
    x.swap(y);
    if (it > 8 && std::abs(std::abs(rayleigh) - prev) <
                      tolerance * std::max<real_t>(1.0, prev)) {
      return std::abs(rayleigh);
    }
    prev = std::abs(rayleigh);
  }
  return prev;
}

}  // namespace

speed_vector uniform_speeds(node_id n) {
  DLB_EXPECTS(n > 0);
  return speed_vector(static_cast<size_t>(n), 1);
}

void validate_speeds(const graph& g, const speed_vector& s) {
  DLB_EXPECTS(static_cast<node_id>(s.size()) == g.num_nodes());
  for (const weight_t si : s) DLB_EXPECTS(si >= 1);
}

std::vector<real_t> symmetric_eigenvalues(std::vector<real_t> a, node_id n) {
  DLB_EXPECTS(n > 0);
  DLB_EXPECTS(a.size() == static_cast<size_t>(n) * static_cast<size_t>(n));
  const auto at = [&a, n](node_id r, node_id c) -> real_t& {
    return a[static_cast<size_t>(r) * static_cast<size_t>(n) +
             static_cast<size_t>(c)];
  };
  // Cyclic Jacobi: sweep all (p,q), rotate away off-diagonal mass.
  for (int sweep = 0; sweep < 100; ++sweep) {
    real_t off = 0;
    for (node_id p = 0; p < n; ++p) {
      for (node_id q = p + 1; q < n; ++q) off += at(p, q) * at(p, q);
    }
    if (off < 1e-24) break;
    for (node_id p = 0; p < n; ++p) {
      for (node_id q = p + 1; q < n; ++q) {
        const real_t apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const real_t theta = (at(q, q) - at(p, p)) / (2 * apq);
        const real_t t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const real_t c = 1.0 / std::sqrt(t * t + 1.0);
        const real_t s = t * c;
        for (node_id k = 0; k < n; ++k) {
          const real_t akp = at(k, p);
          const real_t akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (node_id k = 0; k < n; ++k) {
          const real_t apk = at(p, k);
          const real_t aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<real_t> eig(static_cast<size_t>(n));
  for (node_id i = 0; i < n; ++i) eig[static_cast<size_t>(i)] = at(i, i);
  std::sort(eig.begin(), eig.end());
  return eig;
}

std::vector<real_t> dense_diffusion_matrix(const graph& g,
                                           const speed_vector& s,
                                           const std::vector<real_t>& alpha) {
  validate_speeds(g, s);
  DLB_EXPECTS(static_cast<edge_id>(alpha.size()) == g.num_edges());
  const node_id n = g.num_nodes();
  std::vector<real_t> p(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  for (node_id i = 0; i < n; ++i) {
    real_t out = 0;
    for (const incidence& inc : g.neighbors(i)) {
      const real_t pij = alpha[static_cast<size_t>(inc.edge)] /
                         static_cast<real_t>(s[static_cast<size_t>(i)]);
      p[static_cast<size_t>(i) * static_cast<size_t>(n) +
        static_cast<size_t>(inc.neighbor)] = pij;
      out += pij;
    }
    DLB_EXPECTS(out < 1.0 + flow_epsilon);  // sum_j alpha_ij < s_i
    p[static_cast<size_t>(i) * static_cast<size_t>(n) +
      static_cast<size_t>(i)] = 1.0 - out;
  }
  return p;
}

real_t diffusion_lambda(const graph& g, const speed_vector& s,
                        const std::vector<real_t>& alpha, int max_iterations,
                        real_t tolerance) {
  validate_speeds(g, s);
  DLB_EXPECTS(static_cast<edge_id>(alpha.size()) == g.num_edges());
  const node_id n = g.num_nodes();

  // Symmetrized M = S^{1/2} P S^{-1/2}: M_{ij} = alpha_e / sqrt(s_i s_j),
  // M_{ii} = P_{ii}. Stationary direction: v1_i ∝ sqrt(s_i), eigenvalue 1.
  dvec sqrt_s(static_cast<size_t>(n));
  for (node_id i = 0; i < n; ++i) {
    sqrt_s[static_cast<size_t>(i)] =
        std::sqrt(static_cast<real_t>(s[static_cast<size_t>(i)]));
  }
  dvec diag(static_cast<size_t>(n), 1.0);
  for (node_id i = 0; i < n; ++i) {
    real_t out = 0;
    for (const incidence& inc : g.neighbors(i)) {
      out += alpha[static_cast<size_t>(inc.edge)] /
             static_cast<real_t>(s[static_cast<size_t>(i)]);
    }
    diag[static_cast<size_t>(i)] = 1.0 - out;
  }
  dvec v1 = sqrt_s;
  scale(v1, 1.0 / norm(v1));

  const auto matvec = [&](const dvec& x, dvec& y) {
    for (node_id i = 0; i < n; ++i) {
      y[static_cast<size_t>(i)] = diag[static_cast<size_t>(i)] *
                                  x[static_cast<size_t>(i)];
    }
    for (edge_id e = 0; e < g.num_edges(); ++e) {
      const edge& ed = g.endpoints(e);
      const real_t m = alpha[static_cast<size_t>(e)] /
                       (sqrt_s[static_cast<size_t>(ed.u)] *
                        sqrt_s[static_cast<size_t>(ed.v)]);
      y[static_cast<size_t>(ed.u)] += m * x[static_cast<size_t>(ed.v)];
      y[static_cast<size_t>(ed.v)] += m * x[static_cast<size_t>(ed.u)];
    }
  };
  return deflated_power_iteration(n, matvec, v1, max_iterations, tolerance);
}

real_t diffusion_lambda_dense(const graph& g, const speed_vector& s,
                              const std::vector<real_t>& alpha) {
  const node_id n = g.num_nodes();
  // Eigenvalues of P equal eigenvalues of the symmetric similarity transform.
  std::vector<real_t> m(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  for (node_id i = 0; i < n; ++i) {
    real_t out = 0;
    for (const incidence& inc : g.neighbors(i)) {
      const real_t a = alpha[static_cast<size_t>(inc.edge)];
      out += a / static_cast<real_t>(s[static_cast<size_t>(i)]);
      m[static_cast<size_t>(i) * static_cast<size_t>(n) +
        static_cast<size_t>(inc.neighbor)] =
          a / std::sqrt(static_cast<real_t>(s[static_cast<size_t>(i)]) *
                        static_cast<real_t>(
                            s[static_cast<size_t>(inc.neighbor)]));
    }
    m[static_cast<size_t>(i) * static_cast<size_t>(n) +
      static_cast<size_t>(i)] = 1.0 - out;
  }
  std::vector<real_t> eig = symmetric_eigenvalues(std::move(m), n);
  // eig is ascending; the largest is 1 (stationary). λ is the max |e| over
  // the rest: either eig[n-2] or |eig[0]|.
  real_t lambda = 0;
  if (n >= 2) {
    lambda = std::max(std::abs(eig[static_cast<size_t>(n) - 2]),
                      std::abs(eig.front()));
    // Guard against eig[n-1] slightly below a degenerate second eigenvalue.
    lambda = std::min(lambda, 1.0);
  }
  return lambda;
}

real_t laplacian_gamma(const graph& g, int max_iterations, real_t tolerance) {
  const node_id n = g.num_nodes();
  const real_t shift = 2.0 * static_cast<real_t>(g.max_degree());
  dvec v1(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<real_t>(n)));
  // B = shift*I - L is PSD with top eigenpair (shift, constant vector);
  // the deflated dominant eigenvalue is shift - γ.
  const auto matvec = [&](const dvec& x, dvec& y) {
    for (node_id i = 0; i < n; ++i) {
      y[static_cast<size_t>(i)] =
          (shift - static_cast<real_t>(g.degree(i))) * x[static_cast<size_t>(i)];
    }
    for (edge_id e = 0; e < g.num_edges(); ++e) {
      const edge& ed = g.endpoints(e);
      y[static_cast<size_t>(ed.u)] += x[static_cast<size_t>(ed.v)];
      y[static_cast<size_t>(ed.v)] += x[static_cast<size_t>(ed.u)];
    }
  };
  const real_t mu =
      deflated_power_iteration(n, matvec, v1, max_iterations, tolerance);
  return std::max<real_t>(0.0, shift - mu);
}

real_t laplacian_gamma_dense(const graph& g) {
  const node_id n = g.num_nodes();
  std::vector<real_t> l(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  for (node_id i = 0; i < n; ++i) {
    l[static_cast<size_t>(i) * static_cast<size_t>(n) +
      static_cast<size_t>(i)] = static_cast<real_t>(g.degree(i));
  }
  for (edge_id e = 0; e < g.num_edges(); ++e) {
    const edge& ed = g.endpoints(e);
    l[static_cast<size_t>(ed.u) * static_cast<size_t>(n) +
      static_cast<size_t>(ed.v)] = -1.0;
    l[static_cast<size_t>(ed.v) * static_cast<size_t>(n) +
      static_cast<size_t>(ed.u)] = -1.0;
  }
  std::vector<real_t> eig = symmetric_eigenvalues(std::move(l), n);
  DLB_ASSERT(n >= 2);
  return eig[1];
}

}  // namespace dlb
