#include "dlb/graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "dlb/common/rng.hpp"

namespace dlb::generators {

namespace {

/// Mixed-radix index helpers for grid/torus construction.
node_id linear_index(const std::vector<node_id>& coord,
                     const std::vector<node_id>& sides) {
  node_id idx = 0;
  for (std::size_t k = 0; k < sides.size(); ++k) {
    idx = idx * sides[k] + coord[k];
  }
  return idx;
}

}  // namespace

graph path(node_id n) {
  DLB_EXPECTS(n >= 2);
  std::vector<edge> edges;
  edges.reserve(static_cast<size_t>(n) - 1);
  for (node_id i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return graph(n, std::move(edges));
}

graph cycle(node_id n) {
  DLB_EXPECTS(n >= 3);
  std::vector<edge> edges;
  edges.reserve(static_cast<size_t>(n));
  for (node_id i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  edges.push_back({0, n - 1});
  return graph(n, std::move(edges));
}

graph complete(node_id n) {
  DLB_EXPECTS(n >= 2);
  std::vector<edge> edges;
  edges.reserve(static_cast<size_t>(n) * (static_cast<size_t>(n) - 1) / 2);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return graph(n, std::move(edges));
}

graph star(node_id n) {
  DLB_EXPECTS(n >= 2);
  std::vector<edge> edges;
  edges.reserve(static_cast<size_t>(n) - 1);
  for (node_id leaf = 1; leaf < n; ++leaf) edges.push_back({0, leaf});
  return graph(n, std::move(edges));
}

graph hypercube(int dim) {
  DLB_EXPECTS(dim >= 1 && dim < 30);
  const node_id n = static_cast<node_id>(1) << dim;
  std::vector<edge> edges;
  edges.reserve(static_cast<size_t>(n) * static_cast<size_t>(dim) / 2);
  for (node_id u = 0; u < n; ++u) {
    for (int b = 0; b < dim; ++b) {
      const node_id v = u ^ (static_cast<node_id>(1) << b);
      if (u < v) edges.push_back({u, v});
    }
  }
  return graph(n, std::move(edges));
}

graph grid(const std::vector<node_id>& sides, bool wrap) {
  DLB_EXPECTS(!sides.empty());
  node_id n = 1;
  for (const node_id s : sides) {
    DLB_EXPECTS(s >= 2);
    DLB_EXPECTS(!wrap || s >= 3);  // wrapped side of 2 => parallel edge
    DLB_EXPECTS(n <= (1 << 24) / s);
    n *= s;
  }
  std::vector<edge> edges;
  std::vector<node_id> coord(sides.size(), 0);
  for (node_id idx = 0; idx < n; ++idx) {
    for (std::size_t k = 0; k < sides.size(); ++k) {
      std::vector<node_id> next = coord;
      if (coord[k] + 1 < sides[k]) {
        next[k] = coord[k] + 1;
        edges.push_back({idx, linear_index(next, sides)});
      } else if (wrap) {
        next[k] = 0;
        const node_id w = linear_index(next, sides);
        edges.push_back({std::min(idx, w), std::max(idx, w)});
      }
    }
    // Advance mixed-radix counter (last coordinate fastest, matching
    // linear_index).
    for (std::size_t k = sides.size(); k-- > 0;) {
      if (++coord[k] < sides[k]) break;
      coord[k] = 0;
    }
  }
  // Wrap edges with min/max normalization can duplicate nothing because each
  // wrap edge is emitted once (only from the high end of the axis).
  return graph(n, std::move(edges));
}

graph torus_2d(node_id side) { return grid({side, side}, /*wrap=*/true); }

graph torus(int r, node_id side) {
  DLB_EXPECTS(r >= 1);
  return grid(std::vector<node_id>(static_cast<size_t>(r), side),
              /*wrap=*/true);
}

graph random_regular(node_id n, node_id d, std::uint64_t seed) {
  DLB_EXPECTS(n >= 2 && d >= 1 && d < n);
  DLB_EXPECTS((static_cast<std::int64_t>(n) * d) % 2 == 0);
  rng_t rng = make_rng(seed, /*stream=*/0x5252u);
  // Configuration model with edge-swap repair: pair the n*d stubs at random,
  // then repeatedly repair self-loops and parallel edges by swapping an
  // endpoint with a random other edge. Plain rejection would need
  // exp(Θ(d²)) attempts for larger d; repair converges in a few passes.
  const std::size_t stubs = static_cast<size_t>(n) * static_cast<size_t>(d);
  std::vector<node_id> stub_owner(stubs);
  for (std::size_t s = 0; s < stubs; ++s) {
    stub_owner[s] = static_cast<node_id>(s / static_cast<size_t>(d));
  }

  const auto edge_key = [n](node_id a, node_id b) {
    if (a > b) std::swap(a, b);
    return static_cast<std::int64_t>(a) * n + b;
  };

  for (int attempt = 0; attempt < 200; ++attempt) {
    std::shuffle(stub_owner.begin(), stub_owner.end(), rng);
    std::vector<std::pair<node_id, node_id>> pairing(stubs / 2);
    for (std::size_t s = 0; s < stubs / 2; ++s) {
      pairing[s] = {stub_owner[2 * s], stub_owner[2 * s + 1]};
    }

    bool simple = false;
    for (int pass = 0; pass < 400 && !simple; ++pass) {
      // Index current multiplicities and collect offending edges.
      std::vector<std::int64_t> keys;
      keys.reserve(pairing.size());
      for (const auto& [a, b] : pairing) keys.push_back(edge_key(a, b));
      std::sort(keys.begin(), keys.end());
      std::vector<std::size_t> bad;
      for (std::size_t i = 0; i < pairing.size(); ++i) {
        const auto& [a, b] = pairing[i];
        if (a == b) {
          bad.push_back(i);
          continue;
        }
        const auto k = edge_key(a, b);
        const auto range = std::equal_range(keys.begin(), keys.end(), k);
        if (range.second - range.first > 1) bad.push_back(i);
      }
      if (bad.empty()) {
        simple = true;
        break;
      }
      // Swap each offender's second endpoint with a random partner edge.
      for (const std::size_t i : bad) {
        const std::size_t j = static_cast<std::size_t>(uniform_int<std::int64_t>(
            rng, 0, static_cast<std::int64_t>(pairing.size()) - 1));
        if (i == j) continue;
        std::swap(pairing[i].second, pairing[j].second);
      }
    }
    if (!simple) continue;

    std::vector<edge> edges;
    edges.reserve(pairing.size());
    for (const auto& [a, b] : pairing) {
      edges.push_back({std::min(a, b), std::max(a, b)});
    }
    graph g(n, std::move(edges));
    if (g.is_connected()) return g;
  }
  throw contract_violation(
      "random_regular: failed to sample a simple connected graph");
}

graph erdos_renyi_connected(node_id n, double p, std::uint64_t seed) {
  DLB_EXPECTS(n >= 2 && p > 0.0 && p <= 1.0);
  rng_t rng = make_rng(seed, /*stream=*/0x45u);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<edge> edges;
    for (node_id u = 0; u < n; ++u) {
      for (node_id v = u + 1; v < n; ++v) {
        if (uniform_real(rng) < p) edges.push_back({u, v});
      }
    }
    if (edges.empty()) continue;
    graph g(n, std::move(edges));
    if (g.is_connected()) return g;
  }
  throw contract_violation(
      "erdos_renyi_connected: failed to sample a connected graph; p too small");
}

graph ring_of_cliques(node_id num_cliques, node_id clique_size) {
  DLB_EXPECTS(num_cliques >= 3 && clique_size >= 3);
  const node_id n = num_cliques * clique_size;
  std::vector<edge> edges;
  for (node_id c = 0; c < num_cliques; ++c) {
    const node_id base = c * clique_size;
    for (node_id a = 0; a < clique_size; ++a) {
      for (node_id b = a + 1; b < clique_size; ++b) {
        edges.push_back({base + a, base + b});
      }
    }
    // Bridge: last node of clique c to first node of clique c+1 (mod ring).
    const node_id from = base + clique_size - 1;
    const node_id to = ((c + 1) % num_cliques) * clique_size;
    edges.push_back({std::min(from, to), std::max(from, to)});
  }
  return graph(n, std::move(edges));
}

graph lollipop(node_id clique_size, node_id path_len) {
  DLB_EXPECTS(clique_size >= 3 && path_len >= 1);
  const node_id n = clique_size + path_len;
  std::vector<edge> edges;
  for (node_id a = 0; a < clique_size; ++a) {
    for (node_id b = a + 1; b < clique_size; ++b) edges.push_back({a, b});
  }
  // Path hangs off node clique_size-1.
  edges.push_back({clique_size - 1, clique_size});
  for (node_id i = clique_size; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return graph(n, std::move(edges));
}

graph barbell(node_id clique_size, node_id path_len) {
  DLB_EXPECTS(clique_size >= 3 && path_len >= 0);
  const node_id n = 2 * clique_size + path_len;
  std::vector<edge> edges;
  for (node_id a = 0; a < clique_size; ++a) {
    for (node_id b = a + 1; b < clique_size; ++b) {
      edges.push_back({a, b});                                // left clique
      edges.push_back({clique_size + path_len + a,
                       clique_size + path_len + b});          // right clique
    }
  }
  node_id prev = clique_size - 1;  // last node of left clique
  for (node_id k = 0; k < path_len; ++k) {
    edges.push_back({prev, clique_size + k});
    prev = clique_size + k;
  }
  edges.push_back({prev, clique_size + path_len});  // attach right clique
  return graph(n, std::move(edges));
}

graph complete_binary_tree(int levels) {
  DLB_EXPECTS(levels >= 1 && levels < 25);
  const node_id n = (static_cast<node_id>(1) << levels) - 1;
  std::vector<edge> edges;
  for (node_id i = 1; i < n; ++i) edges.push_back({(i - 1) / 2, i});
  return graph(n, std::move(edges));
}

}  // namespace dlb::generators
