// Proper edge colourings and the periodic-matching schedules they induce.
//
// The periodic matching model (paper §2.1, Hosseini et al. [30]) assumes a
// fixed set of matchings covering every edge, used round-robin. A proper edge
// colouring with k colours is exactly such a set of k matchings. We provide:
//  * misra_gries_edge_coloring — at most Δ+1 colours (Vizing bound),
//  * greedy_edge_coloring      — at most 2Δ-1 colours, simpler and faster.
#pragma once

#include <vector>

#include "dlb/graph/graph.hpp"
#include "dlb/graph/matching.hpp"

namespace dlb {

/// An edge colouring: color[e] in [0, num_colors).
struct edge_coloring {
  std::vector<int> color;  ///< per-edge colour
  int num_colors = 0;
};

/// True iff no two incident edges share a colour and all colours are in range.
[[nodiscard]] bool is_proper_edge_coloring(const graph& g,
                                           const edge_coloring& c);

/// Greedy first-fit colouring; uses at most 2Δ-1 colours.
[[nodiscard]] edge_coloring greedy_edge_coloring(const graph& g);

/// Misra–Gries colouring; uses at most Δ+1 colours. O(m·n) worst case but
/// fast in practice; preferred for building short periodic schedules.
[[nodiscard]] edge_coloring misra_gries_edge_coloring(const graph& g);

/// Splits a colouring into its colour classes — a periodic matching schedule
/// of length num_colors covering every edge exactly once per period.
[[nodiscard]] std::vector<matching> to_matchings(const graph& g,
                                                 const edge_coloring& c);

}  // namespace dlb
