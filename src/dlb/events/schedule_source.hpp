// Adapter: a lock-step workload::arrival_schedule as an event source.
//
// run_dynamic injects sched.arrivals(t) at the start of round t; in event
// time that is "at virtual time t", strictly before the round fires at t+1.
// The adapter therefore emits each batch's arrivals, in batch order, as
// events at time t — running a lock-step schedule through the async driver
// reproduces run_dynamic's metrics bit-for-bit (tests/events_test.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dlb/events/event_source.hpp"
#include "dlb/workload/arrival.hpp"

namespace dlb::events {

class schedule_source final : public event_source {
 public:
  /// Emits `sched->arrivals(t)` at time t for t = 0 .. rounds-1.
  schedule_source(std::unique_ptr<workload::arrival_schedule> sched,
                  round_t rounds);

  [[nodiscard]] std::optional<event> next() override;
  [[nodiscard]] std::string name() const override {
    return "schedule(" + sched_->name() + ")";
  }

  // checkpointable: the (round, in-batch) cursor. Schedules are
  // deterministic functions of the round, so the in-flight batch is rebuilt
  // by replaying arrivals(t-1) instead of being stored.
  void save_state(snapshot::writer& w) const override;
  void restore_state(snapshot::reader& r) override;

 private:
  std::unique_ptr<workload::arrival_schedule> sched_;
  round_t rounds_;
  round_t t_ = 0;
  std::vector<workload::arrival> batch_;  ///< arrivals(t_), being drained
  std::size_t pos_ = 0;
};

}  // namespace dlb::events
