#include "dlb/events/event_source.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "dlb/common/contracts.hpp"
#include "dlb/common/rng.hpp"

namespace dlb::events {

// ---------------------------------------------------------- poisson_source

poisson_source::poisson_source(node_id n, real_t total_rate,
                               std::uint64_t seed, event_kind kind)
    : n_(n), total_rate_(total_rate), kind_(kind), seed_(seed) {
  DLB_EXPECTS(n > 0 && total_rate > 0);
}

poisson_source::poisson_source(std::vector<real_t> rates, std::uint64_t seed,
                               event_kind kind)
    : n_(static_cast<node_id>(rates.size())), kind_(kind), seed_(seed) {
  DLB_EXPECTS(!rates.empty());
  cumulative_.reserve(rates.size());
  real_t sum = 0;
  for (const real_t r : rates) {
    DLB_EXPECTS(r >= 0);
    sum += r;
    cumulative_.push_back(sum);
  }
  DLB_EXPECTS(sum > 0);
  total_rate_ = sum;
}

node_id poisson_source::draw_node() {
  // Drawn from the same per-event RNG stream as the interarrival time (the
  // stream id is the event index), so the whole stream is a pure function of
  // (seed, event index) — replayable without storing RNG state.
  rng_t rng = make_rng(seed_, draws_);
  // Exponential interarrival at the aggregate rate; 1-u is in (0, 1] so the
  // log never sees 0.
  const real_t u = uniform_real(rng);
  now_ += -std::log(1.0 - u) / total_rate_;
  if (cumulative_.empty()) {
    return uniform_int<node_id>(rng, 0, n_ - 1);
  }
  const real_t pick = uniform_real(rng, 0.0, total_rate_);
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), pick);
  return static_cast<node_id>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(), n_ - 1));
}

std::optional<event> poisson_source::next() {
  const node_id node = draw_node();
  ++draws_;
  return event{now_, kind_, node, 1};
}

std::string poisson_source::name() const {
  return (kind_ == event_kind::arrival ? "poisson-arrivals" : "poisson-service");
}

void poisson_source::save_state(snapshot::writer& w) const {
  w.section("poisson_source");
  w.u64(seed_);
  w.u64(draws_);
  w.f64(now_);
}

void poisson_source::restore_state(snapshot::reader& r) {
  r.expect_section("poisson_source");
  r.expect_u64(seed_, "poisson seed");
  draws_ = r.u64();
  now_ = r.f64();
  DLB_EXPECTS(now_ >= 0);
}

// ------------------------------------------------------------ trace_source

trace_source::trace_source(std::istream& in, std::string label)
    : label_(std::move(label)) {
  std::vector<event> parsed;
  std::string line;
  std::size_t lineno = 0;
  sim_time last = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    event ev;
    std::string kind;
    double time = 0;
    long long node = 0, count = 0;
    if (!(ls >> time >> node >> count)) {
      throw contract_violation(label_ + ":" + std::to_string(lineno) +
                               ": expected `time node count [a|s]`");
    }
    ls >> kind;  // optional; absent => arrival
    // Non-inverted comparisons so a NaN time fails validation instead of
    // slipping through (and then poisoning the ordering check for every
    // subsequent line).
    if (!std::isfinite(time) || !(time >= last) || !(time >= 0) ||
        node < 0 || count < 1 ||
        (!kind.empty() && kind != "a" && kind != "s")) {
      throw contract_violation(label_ + ":" + std::to_string(lineno) +
                               ": bad trace event (times must be finite and "
                               "nondecreasing, node >= 0, count >= 1)");
    }
    ev.time = time;
    ev.kind = kind == "s" ? event_kind::service : event_kind::arrival;
    ev.node = static_cast<node_id>(node);
    ev.count = static_cast<weight_t>(count);
    last = time;
    parsed.push_back(ev);
  }
  events_ = std::make_shared<const std::vector<event>>(std::move(parsed));
  summarize();
}

trace_source::trace_source(std::vector<event> events, std::string label)
    : label_(std::move(label)) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    DLB_EXPECTS(events[i].time >= 0 && events[i].node >= 0 &&
                events[i].count >= 1);
    DLB_EXPECTS(i == 0 || events[i - 1].time <= events[i].time);
  }
  events_ = std::make_shared<const std::vector<event>>(std::move(events));
  summarize();
}

void trace_source::summarize() {
  for (const event& ev : *events_) {
    if (ev.kind == event_kind::service) has_service_ = true;
    if (ev.node > max_node_) max_node_ = ev.node;
  }
}

std::optional<event> trace_source::next() {
  if (pos_ >= events_->size()) return std::nullopt;
  return (*events_)[pos_++];
}

void trace_source::save_state(snapshot::writer& w) const {
  w.section("trace_source");
  w.u64(events_->size());
  w.u64(pos_);
}

void trace_source::restore_state(snapshot::reader& r) {
  r.expect_section("trace_source");
  r.expect_u64(events_->size(), "trace event count");
  pos_ = static_cast<std::size_t>(r.u64());
  DLB_EXPECTS(pos_ <= events_->size());
}

std::unique_ptr<trace_source> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw contract_violation("cannot open trace file: " + path);
  return std::make_unique<trace_source>(in, path);
}

}  // namespace dlb::events
