#include "dlb/events/schedule_source.hpp"

#include <utility>

#include "dlb/common/contracts.hpp"

namespace dlb::events {

schedule_source::schedule_source(
    std::unique_ptr<workload::arrival_schedule> sched, round_t rounds)
    : sched_(std::move(sched)), rounds_(rounds) {
  DLB_EXPECTS(sched_ != nullptr && rounds >= 0);
}

std::optional<event> schedule_source::next() {
  while (pos_ >= batch_.size()) {
    if (t_ >= rounds_) return std::nullopt;
    batch_ = sched_->arrivals(t_);
    pos_ = 0;
    ++t_;
  }
  const workload::arrival& a = batch_[pos_++];
  return event{static_cast<sim_time>(t_ - 1), event_kind::arrival, a.node,
               a.count};
}

void schedule_source::save_state(snapshot::writer& w) const {
  w.section("schedule_source");
  w.u64(static_cast<std::uint64_t>(rounds_));
  w.i64(t_);
  w.u64(pos_);
  w.u64(batch_.size());
}

void schedule_source::restore_state(snapshot::reader& r) {
  r.expect_section("schedule_source");
  r.expect_u64(static_cast<std::uint64_t>(rounds_), "schedule rounds");
  t_ = r.i64();
  pos_ = static_cast<std::size_t>(r.u64());
  const std::uint64_t batch_size = r.u64();
  DLB_EXPECTS(t_ >= 0 && t_ <= rounds_);
  batch_ = t_ > 0 ? sched_->arrivals(t_ - 1) : std::vector<workload::arrival>{};
  DLB_EXPECTS(batch_.size() == batch_size && pos_ <= batch_.size());
}

}  // namespace dlb::events
