#include "dlb/events/schedule_source.hpp"

#include <utility>

#include "dlb/common/contracts.hpp"

namespace dlb::events {

schedule_source::schedule_source(
    std::unique_ptr<workload::arrival_schedule> sched, round_t rounds)
    : sched_(std::move(sched)), rounds_(rounds) {
  DLB_EXPECTS(sched_ != nullptr && rounds >= 0);
}

std::optional<event> schedule_source::next() {
  while (pos_ >= batch_.size()) {
    if (t_ >= rounds_) return std::nullopt;
    batch_ = sched_->arrivals(t_);
    pos_ = 0;
    ++t_;
  }
  const workload::arrival& a = batch_[pos_++];
  return event{static_cast<sim_time>(t_ - 1), event_kind::arrival, a.node,
               a.count};
}

}  // namespace dlb::events
