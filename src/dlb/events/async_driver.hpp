// The asynchronous engine driver: arrival streams, service completions and
// balancing rounds interleaved on one virtual clock.
//
// `run_dynamic` injects arrivals lock-step at round boundaries; `run_async`
// replaces the lock-step loop with a discrete-event simulation. Balancing
// round r (0-based) fires at virtual time r+1; event sources fire at
// arbitrary real times in between, and every event with time in [r, r+1)
// is applied before round r executes — exactly the "tasks keep arriving
// while the network balances" regime the paper's introduction motivates,
// now with genuinely asynchronous (Poisson / traced / departing) traffic.
//
// Determinism: events are a pure function of the sources' seeds, the queue
// breaks time ties by scheduling order, and metrics reuse the engine's
// shard-exact discrepancy reduction — so async grid rows are byte-identical
// at any thread or shard-thread count (docs/ARCHITECTURE.md).
#pragma once

#include <memory>
#include <vector>

#include "dlb/core/engine.hpp"
#include "dlb/events/event_queue.hpp"
#include "dlb/events/event_source.hpp"

namespace dlb::events {

struct async_options {
  /// Balancing rounds to simulate; round r fires at virtual time r+1, and
  /// the horizon is time `rounds` (later events cannot affect any round and
  /// are never pulled).
  round_t rounds = 0;
  /// First round included in the steady-state statistics; negative means
  /// rounds/2, matching run_dynamic's warm-up convention.
  round_t warmup = -1;
  /// Observability sinks (obs/probe.hpp): event-dispatch spans and
  /// arrival/service/queue-depth counters. Default = off; attaching one
  /// never changes the simulation (byte-identical results).
  obs::probe probe;
};

/// Outcome of one event-driven run.
struct async_result {
  round_t rounds = 0;
  weight_t total_arrived = 0;     ///< tokens injected by arrival events
  weight_t service_attempts = 0;  ///< service-event units popped
  weight_t tokens_served = 0;     ///< units actually drained (<= attempts;
                                  ///< the rest found an idle node)
  real_t mean_max_min = 0;   ///< post-warmup mean discrepancy, sampled at
                             ///< rounds (run_dynamic's exact convention)
  real_t peak_max_min = 0;   ///< worst post-warmup discrepancy
  real_t final_max_min = 0;
  /// Time-weighted post-warmup mean: each sample weighted by the virtual
  /// time to the next round. The discrete state is piecewise constant
  /// between rounds, so at unit round spacing this equals mean_max_min.
  real_t time_weighted_mean_max_min = 0;
  // Queue-depth percentiles (nearest-rank over the final real loads):
  weight_t depth_p50 = 0;
  weight_t depth_p90 = 0;
  weight_t depth_p99 = 0;
  weight_t depth_max = 0;

  /// The run_dynamic-comparable slice. A lock-step schedule_source run
  /// through run_async yields bit-identical fields to run_dynamic on a
  /// coupled process (tests/events_test.cpp enforces this).
  [[nodiscard]] dynamic_result dynamics() const;
};

/// A pause budget for one async_run::advance call. Budgets bound *this
/// invocation*, not the whole simulation: an exhausted budget pauses the run
/// at a round/event boundary, and a later advance (in this process or, via
/// snapshot restore, in another one) continues exactly where it stopped —
/// the final result is byte-identical no matter where the pauses landed.
struct async_budget {
  /// Pause after this many additional balancing rounds (0 = unbounded).
  round_t max_rounds = 0;
  /// Pause before processing the event that would exceed this many
  /// additional events (0 = unbounded).
  std::uint64_t max_events = 0;
  /// Pause at the next round/event boundary once this much wall-clock time
  /// has elapsed in this call (0 = unbounded). Wall time only chooses the
  /// pause point — never the results.
  std::int64_t max_wall_ms = 0;
};

/// The resumable core of run_async: the same event loop, restructured so
/// the complete mid-run state — process, pending queue entries, per-source
/// cursors, metric accumulators, the virtual clock — can be captured with
/// save_state and restored into a freshly constructed run (identical
/// process/sources/options) in another invocation. Continuing a restored
/// run is bit-exact: result() of an interrupted-and-resumed run equals the
/// uninterrupted run's, at any shard count (tests/events_test.cpp).
class async_run final : public snapshot::checkpointable {
 public:
  /// `d` is borrowed and must outlive the run. Sources are merged through a
  /// stable (time, sequence) queue: one pending event per source, pulled in
  /// source order and refilled after the previous event fired, so equal-time
  /// events across sources interleave deterministically.
  async_run(discrete_process& d,
            std::vector<std::unique_ptr<event_source>> sources,
            const async_options& opts);

  /// Advances the simulation until the round horizon (opts.rounds) or an
  /// exhausted budget, whichever comes first. Returns finished().
  bool advance(const async_budget& budget = {},
               const round_observer& obs = nullptr);

  /// True once all opts.rounds balancing rounds have executed.
  [[nodiscard]] bool finished() const { return t_ >= opts_.rounds; }

  /// Balancing rounds executed so far.
  [[nodiscard]] round_t round() const { return t_; }

  /// Events processed so far (arrivals + services, over all advances).
  [[nodiscard]] std::uint64_t events_processed() const { return events_; }

  /// The run's outcome. Precondition: finished().
  [[nodiscard]] async_result result() const;

  // checkpointable: driver accumulators, the event queue, every source's
  // cursor, and the process itself (which must be checkpointable too).
  void save_state(snapshot::writer& w) const override;
  void restore_state(snapshot::reader& r) override;

 private:
  void refill(std::size_t s);
  void prime();
  void dispatch(const event_queue::entry& e);

  discrete_process* d_;
  std::vector<std::unique_ptr<event_source>> sources_;
  async_options opts_;
  round_t warmup_ = 0;
  sim_time horizon_ = 0;

  // Mutable run state (everything save_state captures, plus *d_):
  bool primed_ = false;
  round_t t_ = 0;
  std::uint64_t events_ = 0;
  event_queue queue_;
  weight_t total_arrived_ = 0;
  weight_t service_attempts_ = 0;
  weight_t tokens_served_ = 0;
  real_t sum_ = 0;
  real_t weighted_sum_ = 0;
  sim_time weight_total_ = 0;
  round_t samples_ = 0;
  real_t peak_max_min_ = 0;
};

/// Drives `d` for opts.rounds balancing rounds while the event streams of
/// `sources` fire on the virtual clock. Arrival events inject tokens;
/// service events drain them (departures) via discrete_process::
/// drain_tokens. Equivalent to async_run(...).advance() + result().
[[nodiscard]] async_result run_async(
    discrete_process& d,
    std::vector<std::unique_ptr<event_source>> sources,
    const async_options& opts, const round_observer& obs = nullptr);

/// run_async with checkpoint-every-k-rounds and restore-from-file: writes a
/// snapshot of the full run (driver + queue + sources + process) to
/// ckpt.path every ckpt.every rounds and at the end; with ckpt.resume the
/// run first restores from ckpt.path. A run killed at any round and
/// relaunched with identical arguments returns exactly the uninterrupted
/// run's result.
[[nodiscard]] async_result run_async_checkpointed(
    discrete_process& d,
    std::vector<std::unique_ptr<event_source>> sources,
    const async_options& opts, const checkpoint_options& ckpt,
    const round_observer& obs = nullptr);

}  // namespace dlb::events
