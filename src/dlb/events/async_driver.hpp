// The asynchronous engine driver: arrival streams, service completions and
// balancing rounds interleaved on one virtual clock.
//
// `run_dynamic` injects arrivals lock-step at round boundaries; `run_async`
// replaces the lock-step loop with a discrete-event simulation. Balancing
// round r (0-based) fires at virtual time r+1; event sources fire at
// arbitrary real times in between, and every event with time in [r, r+1)
// is applied before round r executes — exactly the "tasks keep arriving
// while the network balances" regime the paper's introduction motivates,
// now with genuinely asynchronous (Poisson / traced / departing) traffic.
//
// Determinism: events are a pure function of the sources' seeds, the queue
// breaks time ties by scheduling order, and metrics reuse the engine's
// shard-exact discrepancy reduction — so async grid rows are byte-identical
// at any thread or shard-thread count (docs/ARCHITECTURE.md).
#pragma once

#include <memory>
#include <vector>

#include "dlb/core/engine.hpp"
#include "dlb/events/event_queue.hpp"
#include "dlb/events/event_source.hpp"

namespace dlb::events {

struct async_options {
  /// Balancing rounds to simulate; round r fires at virtual time r+1, and
  /// the horizon is time `rounds` (later events cannot affect any round and
  /// are never pulled).
  round_t rounds = 0;
  /// First round included in the steady-state statistics; negative means
  /// rounds/2, matching run_dynamic's warm-up convention.
  round_t warmup = -1;
  /// Observability sinks (obs/probe.hpp): event-dispatch spans and
  /// arrival/service/queue-depth counters. Default = off; attaching one
  /// never changes the simulation (byte-identical results).
  obs::probe probe;
};

/// Outcome of one event-driven run.
struct async_result {
  round_t rounds = 0;
  weight_t total_arrived = 0;     ///< tokens injected by arrival events
  weight_t service_attempts = 0;  ///< service-event units popped
  weight_t tokens_served = 0;     ///< units actually drained (<= attempts;
                                  ///< the rest found an idle node)
  real_t mean_max_min = 0;   ///< post-warmup mean discrepancy, sampled at
                             ///< rounds (run_dynamic's exact convention)
  real_t peak_max_min = 0;   ///< worst post-warmup discrepancy
  real_t final_max_min = 0;
  /// Time-weighted post-warmup mean: each sample weighted by the virtual
  /// time to the next round. The discrete state is piecewise constant
  /// between rounds, so at unit round spacing this equals mean_max_min.
  real_t time_weighted_mean_max_min = 0;
  // Queue-depth percentiles (nearest-rank over the final real loads):
  weight_t depth_p50 = 0;
  weight_t depth_p90 = 0;
  weight_t depth_p99 = 0;
  weight_t depth_max = 0;

  /// The run_dynamic-comparable slice. A lock-step schedule_source run
  /// through run_async yields bit-identical fields to run_dynamic on a
  /// coupled process (tests/events_test.cpp enforces this).
  [[nodiscard]] dynamic_result dynamics() const;
};

/// Drives `d` for opts.rounds balancing rounds while the event streams of
/// `sources` fire on the virtual clock. Arrival events inject tokens;
/// service events drain them (departures) via discrete_process::
/// drain_tokens. Sources are merged through a stable (time, sequence)
/// queue: the driver pulls one event per source up front (in source order)
/// and refills a source only after its previous event fired, so equal-time
/// events across sources interleave deterministically.
[[nodiscard]] async_result run_async(
    discrete_process& d,
    std::vector<std::unique_ptr<event_source>> sources,
    const async_options& opts, const round_observer& obs = nullptr);

}  // namespace dlb::events
