#include "dlb/events/event_queue.hpp"

#include <algorithm>

#include "dlb/common/contracts.hpp"

namespace dlb::events {

namespace {

// Min-heap via std::*_heap's max-heap semantics: "less" means "fires later".
bool fires_later(const event_queue::entry& a, const event_queue::entry& b) {
  if (a.ev.time != b.ev.time) return a.ev.time > b.ev.time;
  return a.seq > b.seq;
}

}  // namespace

void event_queue::push(const event& ev, std::size_t source) {
  heap_.push_back({ev, next_seq_++, source});
  std::push_heap(heap_.begin(), heap_.end(), fires_later);
}

const event_queue::entry& event_queue::top() const {
  DLB_EXPECTS(!heap_.empty());
  return heap_.front();
}

event_queue::entry event_queue::pop() {
  DLB_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), fires_later);
  entry out = heap_.back();
  heap_.pop_back();
  return out;
}

}  // namespace dlb::events
