#include "dlb/events/event_queue.hpp"

#include <algorithm>

#include "dlb/common/contracts.hpp"

namespace dlb::events {

namespace {

// Min-heap via std::*_heap's max-heap semantics: "less" means "fires later".
bool fires_later(const event_queue::entry& a, const event_queue::entry& b) {
  if (a.ev.time != b.ev.time) return a.ev.time > b.ev.time;
  return a.seq > b.seq;
}

}  // namespace

void event_queue::push(const event& ev, std::size_t source) {
  heap_.push_back({ev, next_seq_++, source});
  std::push_heap(heap_.begin(), heap_.end(), fires_later);
}

const event_queue::entry& event_queue::top() const {
  DLB_EXPECTS(!heap_.empty());
  return heap_.front();
}

event_queue::entry event_queue::pop() {
  DLB_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), fires_later);
  entry out = heap_.back();
  heap_.pop_back();
  return out;
}

void event_queue::save_state(snapshot::writer& w) const {
  w.section("event_queue");
  w.u64(next_seq_);
  w.u64(heap_.size());
  for (const entry& e : heap_) {
    w.f64(e.ev.time);
    w.u8(static_cast<std::uint8_t>(e.ev.kind));
    w.i64(e.ev.node);
    w.i64(e.ev.count);
    w.u64(e.seq);
    w.u64(e.source);
  }
}

void event_queue::restore_state(snapshot::reader& r) {
  r.expect_section("event_queue");
  next_seq_ = r.u64();
  const std::uint64_t count = r.u64();
  std::vector<entry> heap;
  heap.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    entry e;
    e.ev.time = r.f64();
    const std::uint8_t kind = r.u8();
    DLB_EXPECTS(kind <= static_cast<std::uint8_t>(event_kind::service));
    e.ev.kind = static_cast<event_kind>(kind);
    e.ev.node = static_cast<node_id>(r.i64());
    e.ev.count = r.i64();
    e.seq = r.u64();
    e.source = static_cast<std::size_t>(r.u64());
    DLB_EXPECTS(e.seq < next_seq_);
    heap.push_back(e);
  }
  // The array is stored in heap order, so the invariant holds verbatim —
  // but verify rather than trust the file.
  DLB_EXPECTS(std::is_heap(heap.begin(), heap.end(), fires_later));
  heap_ = std::move(heap);
}

}  // namespace dlb::events
