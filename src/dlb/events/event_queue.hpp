// The deterministic discrete-event core: events on a virtual clock.
//
// Everything event-driven in dlb is a deterministic function of seeds — an
// event's firing time is computed when the event is scheduled, never read
// from a wall clock. The queue is a *stable* priority queue: events pop in
// ascending (time, sequence) order, where the sequence number is assigned at
// push time. Two events at the same virtual time therefore fire in exactly
// the order they were scheduled, which is what makes whole async runs
// bit-reproducible (docs/ARCHITECTURE.md, "Event-driven runs").
#pragma once

#include <cstdint>
#include <vector>

#include "dlb/common/types.hpp"
#include "dlb/snapshot/snapshot.hpp"

namespace dlb::events {

/// Virtual time. Balancing round r (0-based) fires at time r+1; sources may
/// fire at arbitrary real times in between. Never wall-clock.
using sim_time = real_t;

/// What an event does when it fires.
enum class event_kind {
  arrival,  ///< `count` unit tokens land on `node`
  service,  ///< up to `count` real tokens complete on `node` and leave
};

/// One scheduled occurrence.
struct event {
  sim_time time = 0;
  event_kind kind = event_kind::arrival;
  node_id node = invalid_node;
  weight_t count = 0;

  friend bool operator==(const event&, const event&) = default;
};

/// A stable min-priority queue of events keyed by (time, sequence).
///
/// `push` assigns each event the next sequence number; `pop` returns the
/// entry with the smallest (time, seq) pair. Ties on time are therefore
/// broken by scheduling order — deterministically, with no dependence on
/// heap internals or container addresses.
class event_queue {
 public:
  struct entry {
    event ev;
    std::uint64_t seq = 0;     ///< assigned at push, ascending
    std::size_t source = 0;    ///< caller tag (async_driver: source index)

    friend bool operator==(const entry&, const entry&) = default;
  };

  /// Schedules `ev`, tagging it with `source` (an opaque caller id returned
  /// on pop — the driver uses it to refill from the right event_source).
  void push(const event& ev, std::size_t source = 0);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// The entry with the smallest (time, seq). Precondition: !empty().
  [[nodiscard]] const entry& top() const;

  /// Removes and returns top(). Precondition: !empty().
  entry pop();

  /// Checkpointing: the pending entries in exact heap-array order plus the
  /// sequence counter — restoring reproduces the identical pop order (ties
  /// included), which the async resume-exactness contract depends on.
  void save_state(snapshot::writer& w) const;
  void restore_state(snapshot::reader& r);

 private:
  std::vector<entry> heap_;  // binary min-heap on (time, seq)
  std::uint64_t next_seq_ = 0;
};

}  // namespace dlb::events
