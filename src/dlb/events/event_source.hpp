// Event sources: seeded generators of arrival / service event streams.
//
// A source is a pull-based iterator over events with nondecreasing times.
// Every stream is a deterministic function of its construction parameters
// (seed, rates, trace bytes) — `next()` draws from a private RNG stream and
// never consults clocks or global state, so an async run replays exactly
// from its seeds. The async driver owns the merge: it pulls one event per
// source into a stable `event_queue` and refills a source only after its
// previous event fired.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dlb/common/types.hpp"
#include "dlb/events/event_queue.hpp"
#include "dlb/snapshot/snapshot.hpp"

namespace dlb::events {

/// A deterministic stream of events in nondecreasing time order. Sources are
/// checkpointable: their entire replay position is a small cursor (event
/// index / virtual clock), because every stream is a pure function of its
/// construction parameters — restore rebuilds the source from config and
/// loads just the cursor.
class event_source : public snapshot::checkpointable {
 public:
  /// The next event of the stream, or nullopt when exhausted. Successive
  /// calls return nondecreasing times. Infinite streams (Poisson) never
  /// return nullopt — the driver stops pulling once an event lands at or
  /// beyond its horizon.
  [[nodiscard]] virtual std::optional<event> next() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// A seeded Poisson process over the nodes of an n-node network: events fire
/// with exponential interarrival times at aggregate rate `total_rate` per
/// unit of virtual time, each carrying one token. With the uniform factory
/// the firing node is uniform on [0, n); with the per-node factory node i is
/// chosen with probability rates[i] / Σrates (the classic superposition of n
/// independent Poisson processes, simulated as one aggregate stream so the
/// queue holds O(1) pending events regardless of n).
class poisson_source final : public event_source {
 public:
  /// Uniform rates: `total_rate` events per unit time spread uniformly over
  /// `n` nodes. `kind` selects arrival or service semantics.
  poisson_source(node_id n, real_t total_rate, std::uint64_t seed,
                 event_kind kind = event_kind::arrival);

  /// Per-node rates (size n, all >= 0, sum > 0).
  poisson_source(std::vector<real_t> rates, std::uint64_t seed,
                 event_kind kind = event_kind::arrival);

  [[nodiscard]] std::optional<event> next() override;
  [[nodiscard]] std::string name() const override;

  // checkpointable: the cursor (events emitted, virtual clock). Each event
  // is a pure function of (seed, event index), so nothing else is state.
  void save_state(snapshot::writer& w) const override;
  void restore_state(snapshot::reader& r) override;

 private:
  node_id draw_node();

  node_id n_ = 0;
  real_t total_rate_ = 0;
  std::vector<real_t> cumulative_;  // empty in uniform mode
  event_kind kind_;
  std::uint64_t draws_ = 0;   ///< events emitted so far (RNG stream id)
  std::uint64_t seed_ = 0;
  sim_time now_ = 0;
};

/// Replays a recorded stream of `(time, node, count)` tuples.
///
/// Text format, one event per line: `time node count [kind]`, where `kind`
/// is `a` (arrival, the default) or `s` (service). Blank lines and lines
/// starting with `#` are ignored. Times must be finite, nondecreasing and
/// >= 0, nodes >= 0, counts >= 1; violations throw contract_violation at
/// parse time, so a malformed trace never half-runs.
///
/// Copyable, and copies are cheap: the parsed events are immutable and
/// shared, and the service/max-node summaries are cached at construction —
/// the grid runtime parses a trace file once and fans O(1) copies out to
/// every cell. A copy also clones the replay cursor, so copy prototypes
/// before consuming them.
class trace_source final : public event_source {
 public:
  /// Parses the whole stream up front.
  explicit trace_source(std::istream& in, std::string label = "trace");

  /// In-memory variant (tests, generated traces). Must be time-sorted.
  explicit trace_source(std::vector<event> events,
                        std::string label = "trace");

  [[nodiscard]] std::optional<event> next() override;
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] std::size_t size() const noexcept { return events_->size(); }

  /// The parsed events (time-sorted, shared across copies).
  [[nodiscard]] const std::vector<event>& events() const noexcept {
    return *events_;
  }

  /// True when the trace carries any service (departure) event (cached).
  /// Callers whose process set cannot drain tokens use this to reject such
  /// traces up front instead of applying departures to some processes and
  /// not others.
  [[nodiscard]] bool has_service_events() const noexcept {
    return has_service_;
  }

  /// Largest node id named by the trace (invalid_node when empty; cached).
  /// Parse time cannot know the topology, so range validation is the
  /// replayer's job — callers check `max_node() < n` before driving a run.
  [[nodiscard]] node_id max_node() const noexcept { return max_node_; }

  // checkpointable: the replay cursor (the parsed events are immutable
  // config, fingerprinted by count).
  void save_state(snapshot::writer& w) const override;
  void restore_state(snapshot::reader& r) override;

 private:
  void summarize();  // fills the has_service_/max_node_ caches

  std::shared_ptr<const std::vector<event>> events_;
  std::size_t pos_ = 0;
  std::string label_;
  bool has_service_ = false;
  node_id max_node_ = invalid_node;
};

/// Opens `path` and builds a trace_source from it; throws contract_violation
/// when the file cannot be read.
[[nodiscard]] std::unique_ptr<trace_source> load_trace(
    const std::string& path);

}  // namespace dlb::events
