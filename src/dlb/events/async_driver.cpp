#include "dlb/events/async_driver.hpp"

#include <algorithm>

#include "dlb/common/contracts.hpp"
#include "dlb/core/metrics.hpp"
#include "dlb/core/sharding.hpp"
#include "dlb/obs/metrics.hpp"
#include "dlb/obs/recorder.hpp"

namespace dlb::events {

dynamic_result async_result::dynamics() const {
  dynamic_result r;
  r.rounds = rounds;
  r.total_arrived = total_arrived;
  r.mean_max_min = mean_max_min;
  r.peak_max_min = peak_max_min;
  r.final_max_min = final_max_min;
  return r;
}

namespace {

/// Nearest-rank percentile over a sorted load vector.
weight_t percentile(const std::vector<weight_t>& sorted, double p) {
  DLB_EXPECTS(!sorted.empty());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

async_result run_async(discrete_process& d,
                       std::vector<std::unique_ptr<event_source>> sources,
                       const async_options& opts, const round_observer& obs) {
  DLB_EXPECTS(opts.rounds >= 1);
  const auto horizon = static_cast<sim_time>(opts.rounds);
  const round_t warmup = opts.warmup >= 0 ? opts.warmup : opts.rounds / 2;

  async_result r;
  r.rounds = opts.rounds;

  event_queue queue;
  // One pending event per live source; an event at or past the horizon can
  // never fire before a round, so its source is dropped for good (infinite
  // streams terminate here).
  const auto refill = [&](std::size_t s) {
    if (const std::optional<event> ev = sources[s]->next();
        ev.has_value() && ev->time < horizon) {
      queue.push(*ev, s);
    }
  };
  for (std::size_t s = 0; s < sources.size(); ++s) refill(s);

  real_t sum = 0;
  real_t weighted_sum = 0;
  sim_time weight_total = 0;
  round_t samples = 0;
  for (round_t t = 0; t < opts.rounds; ++t) {
    const auto round_time = static_cast<sim_time>(t + 1);
    // Everything scheduled strictly before this round's tick fires first;
    // an event at exactly an integer time k lands at the start of interval
    // [k, k+1) and affects round k — which is how the lock-step adapter
    // reproduces run_dynamic's "inject at the start of round t".
    while (!queue.empty() && queue.top().ev.time < round_time) {
      const event_queue::entry e = queue.pop();
      const std::int64_t t0 =
          opts.probe.rec != nullptr ? opts.probe.rec->now() : 0;
      switch (e.ev.kind) {
        case event_kind::arrival:
          d.inject_tokens(e.ev.node, e.ev.count);
          r.total_arrived += e.ev.count;
          if (opts.probe.met != nullptr) {
            opts.probe.met->add_arrivals(
                static_cast<std::uint64_t>(e.ev.count));
          }
          break;
        case event_kind::service: {
          r.service_attempts += e.ev.count;
          const weight_t drained = d.drain_tokens(e.ev.node, e.ev.count);
          r.tokens_served += drained;
          if (opts.probe.met != nullptr) {
            opts.probe.met->add_served(static_cast<std::uint64_t>(drained));
          }
          break;
        }
      }
      if (opts.probe.rec != nullptr) {
        opts.probe.rec->complete(
            e.ev.kind == event_kind::arrival ? "event:arrival"
                                             : "event:service",
            t0, opts.probe.rec->now() - t0, -1, opts.probe.cell,
            static_cast<std::int64_t>(e.ev.count));
      }
      if (opts.probe.met != nullptr) {
        opts.probe.met->add_event(queue.size());
      }
      refill(e.source);
    }
    {
      const obs::scoped_span span(opts.probe.rec, "round", -1,
                                  opts.probe.cell);
      d.step();
    }
    if (opts.probe.met != nullptr) opts.probe.met->add_round();
    if (obs) obs(d.rounds_executed(), d);
    if (t >= warmup) {
      const real_t disc = round_discrepancy(d);
      sum += disc;
      // The state holds this discrepancy until the next round fires. Rounds
      // are currently unit-spaced, so dt is always 1.0 — but the weighted
      // form (including its own denominator) is kept general so non-unit
      // round spacing cannot silently skew the time average.
      const sim_time dt = static_cast<sim_time>(t + 2) - round_time;
      weighted_sum += disc * dt;
      weight_total += dt;
      r.peak_max_min = std::max(r.peak_max_min, disc);
      ++samples;
    }
  }

  r.mean_max_min = samples > 0 ? sum / static_cast<real_t>(samples) : 0;
  r.time_weighted_mean_max_min =
      weight_total > 0 ? weighted_sum / weight_total : 0;

  // The loads vector is materialized once for the depth percentiles (which
  // need the sorted distribution anyway); the final discrepancy reuses it
  // when the process steps sequentially and takes the shard-exact reduction
  // otherwise — both equal round_discrepancy's value bit-for-bit.
  std::vector<weight_t> loads = d.real_loads();
  if (const auto* sh = dynamic_cast<const shardable*>(&d);
      sh != nullptr && sh->sharding() != nullptr) {
    r.final_max_min = sharded_max_min_discrepancy(*sh);
  } else {
    r.final_max_min = max_min_discrepancy(loads, d.speeds());
  }
  std::sort(loads.begin(), loads.end());
  r.depth_p50 = percentile(loads, 0.50);
  r.depth_p90 = percentile(loads, 0.90);
  r.depth_p99 = percentile(loads, 0.99);
  r.depth_max = loads.back();
  return r;
}

}  // namespace dlb::events
