#include "dlb/events/async_driver.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "dlb/common/contracts.hpp"
#include "dlb/core/metrics.hpp"
#include "dlb/core/sharding.hpp"
#include "dlb/obs/metrics.hpp"
#include "dlb/obs/prof.hpp"
#include "dlb/obs/recorder.hpp"

namespace dlb::events {

dynamic_result async_result::dynamics() const {
  dynamic_result r;
  r.rounds = rounds;
  r.total_arrived = total_arrived;
  r.mean_max_min = mean_max_min;
  r.peak_max_min = peak_max_min;
  r.final_max_min = final_max_min;
  return r;
}

namespace {

/// Nearest-rank percentile over a sorted load vector.
weight_t percentile(const std::vector<weight_t>& sorted, double p) {
  DLB_EXPECTS(!sorted.empty());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

constexpr std::string_view async_section = "async_run";

}  // namespace

async_run::async_run(discrete_process& d,
                     std::vector<std::unique_ptr<event_source>> sources,
                     const async_options& opts)
    : d_(&d), sources_(std::move(sources)), opts_(opts) {
  DLB_EXPECTS(opts.rounds >= 1);
  warmup_ = opts.warmup >= 0 ? opts.warmup : opts.rounds / 2;
  horizon_ = static_cast<sim_time>(opts.rounds);
}

void async_run::refill(std::size_t s) {
  // One pending event per live source; an event at or past the horizon can
  // never fire before a round, so its source is dropped for good (infinite
  // streams terminate here).
  if (const std::optional<event> ev = sources_[s]->next();
      ev.has_value() && ev->time < horizon_) {
    queue_.push(*ev, s);
  }
}

void async_run::prime() {
  for (std::size_t s = 0; s < sources_.size(); ++s) refill(s);
  primed_ = true;
}

void async_run::dispatch(const event_queue::entry& e) {
  const obs::prof::hw_reading p0 = opts_.probe.prf != nullptr
                                       ? opts_.probe.prf->begin()
                                       : obs::prof::hw_reading{};
  const std::int64_t t0 =
      opts_.probe.rec != nullptr ? opts_.probe.rec->now() : 0;
  switch (e.ev.kind) {
    case event_kind::arrival:
      d_->inject_tokens(e.ev.node, e.ev.count);
      total_arrived_ += e.ev.count;
      if (opts_.probe.met != nullptr) {
        opts_.probe.met->add_arrivals(static_cast<std::uint64_t>(e.ev.count));
      }
      break;
    case event_kind::service: {
      service_attempts_ += e.ev.count;
      const weight_t drained = d_->drain_tokens(e.ev.node, e.ev.count);
      tokens_served_ += drained;
      if (opts_.probe.met != nullptr) {
        opts_.probe.met->add_served(static_cast<std::uint64_t>(drained));
      }
      break;
    }
  }
  if (opts_.probe.prf != nullptr) {
    opts_.probe.prf->complete(
        e.ev.kind == event_kind::arrival ? "event:arrival" : "event:service",
        -1, opts_.probe.cell, p0);
  }
  if (opts_.probe.rec != nullptr) {
    opts_.probe.rec->complete(
        e.ev.kind == event_kind::arrival ? "event:arrival" : "event:service",
        t0, opts_.probe.rec->now() - t0, -1, opts_.probe.cell,
        static_cast<std::int64_t>(e.ev.count));
  }
  if (opts_.probe.met != nullptr) {
    opts_.probe.met->add_event(queue_.size());
  }
  refill(e.source);
}

bool async_run::advance(const async_budget& budget,
                        const round_observer& obs) {
  DLB_EXPECTS(budget.max_rounds >= 0 && budget.max_wall_ms >= 0);
  // A fresh run pulls its first events here rather than in the constructor,
  // so a restore (which carries the queue and source cursors in the
  // snapshot) never double-consumes the sources.
  if (!primed_) prime();

  // dlb-lint: allow(wall-clock): max_wall_ms only picks the pause point —
  const auto started = std::chrono::steady_clock::now();
  const auto over_wall = [&] {
    if (budget.max_wall_ms <= 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        // dlb-lint: allow(wall-clock): state at any pause resumes byte-exactly
        std::chrono::steady_clock::now() - started);
    return elapsed.count() >= budget.max_wall_ms;
  };

  round_t rounds_done = 0;
  std::uint64_t events_done = 0;
  while (t_ < opts_.rounds) {
    if (budget.max_rounds > 0 && rounds_done >= budget.max_rounds) break;
    if (over_wall()) break;
    const auto round_time = static_cast<sim_time>(t_ + 1);
    // Everything scheduled strictly before this round's tick fires first;
    // an event at exactly an integer time k lands at the start of interval
    // [k, k+1) and affects round k — which is how the lock-step adapter
    // reproduces run_dynamic's "inject at the start of round t".
    while (!queue_.empty() && queue_.top().ev.time < round_time) {
      // Event budgets pause *before* the event that would exceed them; the
      // half-dispatched round is plain state (queue + cursors + process), so
      // a snapshot taken here still resumes bit-exactly.
      if (budget.max_events > 0 && events_done >= budget.max_events) {
        return false;
      }
      if (over_wall()) return false;
      dispatch(queue_.pop());
      ++events_done;
      ++events_;
    }
    {
      const obs::scoped_span span(opts_.probe.rec, "round", -1,
                                  opts_.probe.cell);
      const obs::prof::scoped_sample sample(opts_.probe.prf, "round", -1,
                                            opts_.probe.cell);
      d_->step();
    }
    if (opts_.probe.met != nullptr) opts_.probe.met->add_round();
    if (obs) obs(d_->rounds_executed(), *d_);
    if (t_ >= warmup_) {
      const real_t disc = round_discrepancy(*d_);
      sum_ += disc;
      // The state holds this discrepancy until the next round fires. Rounds
      // are currently unit-spaced, so dt is always 1.0 — but the weighted
      // form (including its own denominator) is kept general so non-unit
      // round spacing cannot silently skew the time average.
      const sim_time dt = static_cast<sim_time>(t_ + 2) - round_time;
      weighted_sum_ += disc * dt;
      weight_total_ += dt;
      peak_max_min_ = std::max(peak_max_min_, disc);
      ++samples_;
    }
    ++t_;
    ++rounds_done;
  }
  return finished();
}

async_result async_run::result() const {
  DLB_EXPECTS(finished());
  async_result r;
  r.rounds = opts_.rounds;
  r.total_arrived = total_arrived_;
  r.service_attempts = service_attempts_;
  r.tokens_served = tokens_served_;
  r.peak_max_min = peak_max_min_;
  r.mean_max_min = samples_ > 0 ? sum_ / static_cast<real_t>(samples_) : 0;
  r.time_weighted_mean_max_min =
      weight_total_ > 0 ? weighted_sum_ / weight_total_ : 0;

  // The loads vector is materialized once for the depth percentiles (which
  // need the sorted distribution anyway); the final discrepancy reuses it
  // when the process steps sequentially and takes the shard-exact reduction
  // otherwise — both equal round_discrepancy's value bit-for-bit.
  std::vector<weight_t> loads = d_->real_loads();
  if (const auto* sh = dynamic_cast<const shardable*>(d_);
      sh != nullptr && sh->sharding() != nullptr) {
    r.final_max_min = sharded_max_min_discrepancy(*sh);
  } else {
    r.final_max_min = max_min_discrepancy(loads, d_->speeds());
  }
  std::sort(loads.begin(), loads.end());
  r.depth_p50 = percentile(loads, 0.50);
  r.depth_p90 = percentile(loads, 0.90);
  r.depth_p99 = percentile(loads, 0.99);
  r.depth_max = loads.back();
  return r;
}

void async_run::save_state(snapshot::writer& w) const {
  w.section(async_section);
  // Config fingerprint: a snapshot only restores into a run built with the
  // same horizon, warm-up and source list.
  w.u64(static_cast<std::uint64_t>(opts_.rounds));
  w.u64(static_cast<std::uint64_t>(warmup_));
  w.u64(sources_.size());
  w.u8(primed_ ? 1 : 0);
  w.i64(t_);
  w.u64(events_);
  w.i64(total_arrived_);
  w.i64(service_attempts_);
  w.i64(tokens_served_);
  w.f64(sum_);
  w.f64(weighted_sum_);
  w.f64(weight_total_);
  w.i64(samples_);
  w.f64(peak_max_min_);
  queue_.save_state(w);
  for (const auto& s : sources_) s->save_state(w);
  snapshot::require_checkpointable(*d_, "the async run's process")
      .save_state(w);
}

void async_run::restore_state(snapshot::reader& r) {
  r.expect_section(async_section);
  r.expect_u64(static_cast<std::uint64_t>(opts_.rounds), "async round count");
  r.expect_u64(static_cast<std::uint64_t>(warmup_), "async warm-up");
  r.expect_u64(sources_.size(), "async source count");
  primed_ = r.u8() != 0;
  t_ = r.i64();
  events_ = r.u64();
  total_arrived_ = r.i64();
  service_attempts_ = r.i64();
  tokens_served_ = r.i64();
  sum_ = r.f64();
  weighted_sum_ = r.f64();
  weight_total_ = r.f64();
  samples_ = r.i64();
  peak_max_min_ = r.f64();
  DLB_EXPECTS(t_ >= 0 && t_ <= opts_.rounds && samples_ >= 0);
  queue_.restore_state(r);
  for (const auto& s : sources_) s->restore_state(r);
  snapshot::require_checkpointable(*d_, "the async run's process")
      .restore_state(r);
}

async_result run_async(discrete_process& d,
                       std::vector<std::unique_ptr<event_source>> sources,
                       const async_options& opts, const round_observer& obs) {
  async_run run(d, std::move(sources), opts);
  run.advance({}, obs);
  return run.result();
}

async_result run_async_checkpointed(
    discrete_process& d, std::vector<std::unique_ptr<event_source>> sources,
    const async_options& opts, const checkpoint_options& ckpt,
    const round_observer& obs) {
  DLB_EXPECTS(!ckpt.path.empty() && ckpt.every >= 0);
  async_run run(d, std::move(sources), opts);
  if (ckpt.resume) {
    snapshot::reader r = snapshot::reader::from_file(ckpt.path);
    r.expect_section("dlb-async-checkpoint");
    run.restore_state(r);
  }
  const auto save = [&] {
    snapshot::writer w;
    w.section("dlb-async-checkpoint");
    run.save_state(w);
    w.save_file(ckpt.path);
  };
  const round_t stride = ckpt.every > 0 ? ckpt.every : opts.rounds;
  while (!run.advance({.max_rounds = stride}, obs)) save();
  save();
  return run.result();
}

}  // namespace dlb::events
