// Lock-free-per-thread trace recorder.
//
// A recorder owns one append-only event buffer per participating thread.
// Threads register themselves lazily on their first record and cache the
// buffer pointer in a thread_local slot, so the steady-state record path is
// a clock read plus a vector push_back on thread-private storage — no lock,
// no atomic, no contention. The registry mutex is taken only on a thread's
// first record against a given recorder.
//
// Timestamps are steady_clock nanoseconds relative to the recorder's
// construction epoch, so spans from different threads order correctly and
// exported microsecond values stay small.
//
// Reading the buffers back (events(), cells()) is only safe when no
// instrumented work is in flight — after run_grid has returned and the pools
// are idle. That is the natural export point and the only one dlb_run uses.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dlb/obs/metrics.hpp"
#include "dlb/obs/probe.hpp"

namespace dlb::obs {

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the recorder) — records store the pointer, never a copy.
struct span_record {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< start, ns since the recorder epoch
  std::int64_t dur_ns = 0;  ///< duration, ns
  std::int64_t arg = -1;    ///< span payload: items for phases, queue-wait ns
                            ///< for pool tasks, -1 = none
  std::uint64_t cell = no_cell;  ///< owning cell, or no_cell
  std::uint32_t tid = 0;    ///< recorder-assigned thread index
  std::int32_t shard = -1;  ///< shard index for per-shard phase spans
};

/// Allocation accounting for a recorder's span buffers.
struct recorder_footprint {
  std::uint64_t threads = 0;  ///< per-thread buffers registered
  std::uint64_t spans = 0;    ///< spans held across all buffers
  std::uint64_t bytes = 0;    ///< capacity actually reserved
};

/// One experiment cell the recorder saw: identity plus (once the cell has
/// finished) its metrics snapshot — the sidecar JSON rows.
struct cell_record {
  std::uint64_t id = 0;      ///< recorder-assigned, unique across grids
  std::uint64_t index = 0;   ///< the grid's own cell index (repeats per grid)
  std::string grid;
  std::string scenario;
  std::string process;
  metrics_snapshot snapshot;
  bool finished = false;
};

class recorder {
 public:
  recorder();
  ~recorder();

  recorder(const recorder&) = delete;
  recorder& operator=(const recorder&) = delete;

  /// Nanoseconds since the recorder epoch (steady_clock).
  [[nodiscard]] std::int64_t now() const noexcept;

  /// Appends one completed span to the calling thread's buffer. `name` must
  /// be a string literal. Lock-free after the thread's first record.
  void complete(const char* name, std::int64_t ts_ns, std::int64_t dur_ns,
                std::int32_t shard = -1, std::uint64_t cell = no_cell,
                std::int64_t arg = -1);

  /// Registers one experiment cell and returns its recorder-unique id
  /// (grid-local cell indices repeat across grids in a multi-grid run).
  /// Thread-safe.
  [[nodiscard]] std::uint64_t register_cell(std::string grid,
                                            std::string scenario,
                                            std::string process,
                                            std::uint64_t index);

  /// Stores the finished cell's metrics snapshot. Thread-safe.
  void finish_cell(std::uint64_t id, const metrics_snapshot& snapshot);

  /// All spans, merged across threads and sorted by start time. Only valid
  /// when no instrumented work is in flight.
  [[nodiscard]] std::vector<span_record> events() const;

  /// All registered cells in registration order. Same quiescence contract.
  [[nodiscard]] std::vector<cell_record> cells() const;

  /// Buffer footprint (threads registered, spans held, bytes reserved) —
  /// surfaced by the profile sidecar's memory section. Same quiescence
  /// contract as events().
  [[nodiscard]] recorder_footprint footprint() const;

 private:
  struct buffer {
    std::uint32_t tid = 0;
    std::vector<span_record> spans;
  };

  /// The calling thread's buffer (registering it on first use).
  buffer& local();

  const std::uint64_t id_;  ///< distinguishes recorders in thread_local caches
  std::int64_t epoch_ns_ = 0;  ///< steady_clock at construction

  mutable std::mutex mutex_;  // guards the containers below, not their spans
  std::vector<std::unique_ptr<buffer>> buffers_;
  std::vector<cell_record> cells_;
};

/// RAII span: records [construction, destruction) on the probe's recorder.
/// A null recorder makes both ends a no-op — the zero-cost-when-disabled
/// idiom for code that cannot conveniently call complete() itself.
class scoped_span {
 public:
  scoped_span(recorder* rec, const char* name, std::int32_t shard = -1,
              std::uint64_t cell = no_cell, std::int64_t arg = -1) noexcept
      : rec_(rec), name_(name), shard_(shard), cell_(cell), arg_(arg) {
    if (rec_ != nullptr) start_ns_ = rec_->now();
  }
  ~scoped_span() {
    if (rec_ != nullptr) {
      rec_->complete(name_, start_ns_, rec_->now() - start_ns_, shard_, cell_,
                     arg_);
    }
  }
  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

 private:
  recorder* rec_;
  const char* name_;
  std::int64_t start_ns_ = 0;
  std::int32_t shard_;
  std::uint64_t cell_;
  std::int64_t arg_;
};

}  // namespace dlb::obs
