// Per-cell metrics: named monotonic counters plus log2-bucket histograms.
//
// One `metrics` object lives per executing cell (runtime/experiment_grid
// builds it next to the cell's row). All mutators are relaxed atomic adds —
// shard threads of one cell bump them concurrently; cross-counter ordering
// is irrelevant because the object is only read after the cell finished.
//
// The counters deliberately track quantities that are *deterministic by
// construction* at any shard count: phase ranges partition the full node and
// edge sets, token movement is the processes' own integer accounting, and
// arrivals/services come from seeded streams. That is what lets run_cell
// append the allow-listed counters to result_row.extra (behind the opt-in
// --obs-extras flag) without breaking the byte-identical-rows contract
// across --threads / --shard-threads. Timing-derived values (barrier-wait
// ns, queue depth samples) live only in the sidecar snapshot and the trace —
// never in rows.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dlb::obs {

/// Power-of-two bucket histogram: value v lands in bucket bit_width(v).
/// Bucket 0 holds exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b). The top
/// value 2^64-1 has bit width 64, so 65 buckets are needed — with 64 the
/// whole top octave [2^63, 2^64) indexed one past the array
/// (tests/obs_test.cpp pins every boundary).
class histogram {
 public:
  static constexpr std::size_t num_buckets = 65;

  void add(std::uint64_t value) noexcept {
    const std::size_t b =
        value == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(value));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::array<std::uint64_t, num_buckets> snapshot()
      const noexcept {
    std::array<std::uint64_t, num_buckets> out{};
    for (std::size_t b = 0; b < num_buckets; ++b) {
      out[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, num_buckets> buckets_{};
};

/// Plain-value copy of a metrics object, taken after the cell finished.
/// `counters` holds (name, value) pairs in a fixed order so serialization is
/// byte-stable.
struct metrics_snapshot {
  std::vector<std::pair<const char*, std::uint64_t>> counters;
  std::array<std::uint64_t, histogram::num_buckets> barrier_wait_hist{};
  std::array<std::uint64_t, histogram::num_buckets> queue_depth_hist{};

  /// Value of a named counter, 0 when absent.
  [[nodiscard]] std::uint64_t counter(const char* name) const;
};

class metrics {
 public:
  /// One edge/node phase executed over `items` total entities (the ranges of
  /// all shards sum to the full set, so the totals are shard-count
  /// independent).
  void count_phase(bool edge_items, std::uint64_t items) noexcept {
    phases_.fetch_add(1, std::memory_order_relaxed);
    (edge_items ? edges_touched_ : nodes_touched_)
        .fetch_add(items, std::memory_order_relaxed);
  }

  /// Tokens the process physically transferred across edges (counted once,
  /// at the receiving side of each transfer, by the processes themselves).
  void add_tokens_moved(std::uint64_t n) noexcept {
    tokens_moved_.fetch_add(n, std::memory_order_relaxed);
  }

  /// One shard spent `ns` waiting at a phase barrier for slower shards.
  void add_barrier_wait(std::uint64_t ns) noexcept {
    barrier_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
    barrier_wait_.add(ns);
  }

  void add_round() noexcept {
    rounds_.fetch_add(1, std::memory_order_relaxed);
  }

  void add_arrivals(std::uint64_t n) noexcept {
    arrivals_.fetch_add(n, std::memory_order_relaxed);
  }

  void add_served(std::uint64_t n) noexcept {
    served_.fetch_add(n, std::memory_order_relaxed);
  }

  /// One async event dispatched with `queue_depth` entries still pending.
  void add_event(std::uint64_t queue_depth) noexcept {
    events_dispatched_.fetch_add(1, std::memory_order_relaxed);
    queue_depth_.add(queue_depth);
  }

  [[nodiscard]] metrics_snapshot take() const;

 private:
  std::atomic<std::uint64_t> phases_{0};
  std::atomic<std::uint64_t> edges_touched_{0};
  std::atomic<std::uint64_t> nodes_touched_{0};
  std::atomic<std::uint64_t> tokens_moved_{0};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> arrivals_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> events_dispatched_{0};
  std::atomic<std::uint64_t> barrier_wait_ns_{0};
  histogram barrier_wait_;
  histogram queue_depth_;
};

}  // namespace dlb::obs
