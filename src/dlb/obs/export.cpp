#include "dlb/obs/export.hpp"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dlb::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microseconds with sub-ns timestamps preserved (trace-event ts/dur unit).
void write_us(std::ostream& os, std::int64_t ns) {
  os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
     << std::setfill(' ');
}

/// The span's payload key: phases carry entity counts, pool tasks carry the
/// enqueue→start latency.
const char* arg_key(const span_record& span) {
  return std::strcmp(span.name, "pool_task") == 0 ? "queue_wait_ns" : "items";
}

bool is_barrier(const char* name) {
  return std::strncmp(name, "barrier:", 8) == 0;
}

void write_hist(std::ostream& os, const char* key,
                const std::array<std::uint64_t, histogram::num_buckets>& h) {
  // Buckets past the last non-empty one carry no information — trim them so
  // the sidecar stays readable.
  std::size_t last = 0;
  for (std::size_t b = 0; b < histogram::num_buckets; ++b) {
    if (h[b] > 0) last = b + 1;
  }
  os << '"' << key << "\":[";
  for (std::size_t b = 0; b < last; ++b) {
    if (b > 0) os << ',';
    os << h[b];
  }
  os << ']';
}

}  // namespace

void write_chrome_trace(std::ostream& os, const recorder& rec) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const span_record& span : rec.events()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid << ",\"name\":";
    write_escaped(os, span.name);
    os << ",\"cat\":\"dlb\",\"ts\":";
    write_us(os, span.ts_ns);
    os << ",\"dur\":";
    write_us(os, span.dur_ns);
    os << ",\"args\":{";
    bool first_arg = true;
    const auto arg_field = [&](const char* key, std::int64_t value) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << key << "\":" << value;
    };
    if (span.shard >= 0) arg_field("shard", span.shard);
    if (span.cell != no_cell) {
      arg_field("cell", static_cast<std::int64_t>(span.cell));
    }
    if (span.arg >= 0) arg_field(arg_key(span), span.arg);
    os << "}}";
  }
  os << "\n]}\n";
}

void write_metrics_sidecar(std::ostream& os, const recorder& rec) {
  os << "[\n";
  bool first = true;
  for (const cell_record& cell : rec.cells()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"cell\":" << cell.id << ",\"grid_cell\":" << cell.index
       << ",\"grid\":";
    write_escaped(os, cell.grid);
    os << ",\"scenario\":";
    write_escaped(os, cell.scenario);
    os << ",\"process\":";
    write_escaped(os, cell.process);
    os << ",\"finished\":" << (cell.finished ? "true" : "false")
       << ",\"counters\":{";
    bool first_counter = true;
    for (const auto& [key, value] : cell.snapshot.counters) {
      if (!first_counter) os << ',';
      first_counter = false;
      os << '"' << key << "\":" << value;
    }
    os << "},";
    write_hist(os, "barrier_wait_hist", cell.snapshot.barrier_wait_hist);
    os << ',';
    write_hist(os, "queue_depth_hist", cell.snapshot.queue_depth_hist);
    os << '}';
  }
  os << "\n]\n";
}

void write_summary(std::ostream& os, const recorder& rec,
                   const summary_options& options) {
  const std::vector<span_record> events = rec.events();
  if (events.empty()) {
    os << "obs: no spans recorded\n";
    return;
  }

  struct name_stats {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };
  std::map<std::string, name_stats> by_name;
  // Per-shard totals of the sharded phase spans (barrier spans excluded —
  // their skew is definitionally inverted: the slowest shard waits least).
  std::map<std::string, std::map<std::int32_t, std::int64_t>> shard_totals;
  std::map<std::uint32_t, std::int64_t> pool_busy;  // tid → Σ pool_task dur
  std::int64_t queue_wait_total = 0;
  std::int64_t queue_wait_max = 0;
  std::uint64_t queue_wait_count = 0;
  std::int64_t t_min = events.front().ts_ns;
  std::int64_t t_max = t_min;

  for (const span_record& span : events) {
    name_stats& ns = by_name[span.name];
    ++ns.count;
    ns.total_ns += span.dur_ns;
    ns.max_ns = std::max(ns.max_ns, span.dur_ns);
    t_min = std::min(t_min, span.ts_ns);
    t_max = std::max(t_max, span.ts_ns + span.dur_ns);
    if (span.shard >= 0 && !is_barrier(span.name)) {
      shard_totals[span.name][span.shard] += span.dur_ns;
    }
    if (std::strcmp(span.name, "pool_task") == 0) {
      pool_busy[span.tid] += span.dur_ns;
      if (span.arg >= 0) {
        queue_wait_total += span.arg;
        queue_wait_max = std::max(queue_wait_max, span.arg);
        ++queue_wait_count;
      }
    }
  }
  const double wall_ms =
      static_cast<double>(t_max - t_min) / 1e6;
  const auto ms = [](std::int64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };

  os << "== obs summary: " << events.size() << " spans over " << std::fixed
     << std::setprecision(2) << wall_ms << " ms ==\n";

  std::vector<std::pair<std::string, name_stats>> ranked(by_name.begin(),
                                                         by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  os << "top spans by total time:\n";
  os << "  " << std::left << std::setw(28) << "name" << std::right
     << std::setw(10) << "count" << std::setw(14) << "total ms"
     << std::setw(14) << "mean us" << std::setw(14) << "max us" << "\n";
  const std::size_t top = std::min<std::size_t>(ranked.size(), 12);
  for (std::size_t i = 0; i < top; ++i) {
    const auto& [name, st] = ranked[i];
    os << "  " << std::left << std::setw(28) << name << std::right
       << std::setw(10) << st.count << std::setw(14) << std::setprecision(2)
       << ms(st.total_ns) << std::setw(14) << std::setprecision(1)
       << static_cast<double>(st.total_ns) /
              (1e3 * static_cast<double>(st.count))
       << std::setw(14) << static_cast<double>(st.max_ns) / 1e3 << "\n";
  }

  if (!shard_totals.empty()) {
    os << "per-phase shard balance (totals across the run):\n";
    os << "  " << std::left << std::setw(28) << "phase" << std::right
       << std::setw(8) << "shards" << std::setw(14) << "mean/shard ms"
       << std::setw(14) << "slowest ms" << std::setw(8) << "skew" << "\n";
    for (const auto& [name, per_shard] : shard_totals) {
      std::int64_t total = 0;
      std::int64_t slowest = 0;
      for (const auto& [shard, dur] : per_shard) {
        total += dur;
        slowest = std::max(slowest, dur);
      }
      const double mean =
          static_cast<double>(total) / static_cast<double>(per_shard.size());
      os << "  " << std::left << std::setw(28) << name << std::right
         << std::setw(8) << per_shard.size() << std::setw(14)
         << std::setprecision(2) << mean / 1e6 << std::setw(14)
         << ms(slowest) << std::setw(7) << std::setprecision(2)
         << (mean > 0 ? static_cast<double>(slowest) / mean : 1.0) << "x\n";
    }
  }

  std::int64_t barrier_total = 0;
  for (const auto& [name, st] : by_name) {
    if (is_barrier(name.c_str())) barrier_total += st.total_ns;
  }
  if (barrier_total > 0) {
    os << "barrier waits: " << std::setprecision(2) << ms(barrier_total)
       << " ms total\n";
  }

  if (!pool_busy.empty()) {
    // A run with per-cell shard pools registers hundreds of mostly-idle
    // tids — show the busiest few, fold the rest into one aggregate.
    std::vector<std::pair<std::int64_t, std::uint32_t>> busiest;
    for (const auto& [tid, busy] : pool_busy) busiest.push_back({busy, tid});
    std::sort(busiest.rbegin(), busiest.rend());
    os << "pool tasks: utilization over the " << std::setprecision(2)
       << wall_ms << " ms window (" << busiest.size() << " worker threads):";
    const std::size_t shown =
        std::min<std::size_t>(busiest.size(), options.top_tids);
    for (std::size_t i = 0; i < shown; ++i) {
      os << " t" << busiest[i].second << "=" << std::setprecision(0)
         << (wall_ms > 0 ? 100.0 * ms(busiest[i].first) / wall_ms : 0.0)
         << "%";
    }
    if (busiest.size() > shown) {
      std::int64_t rest = 0;
      for (std::size_t i = shown; i < busiest.size(); ++i) {
        rest += busiest[i].first;
      }
      os << " +" << busiest.size() - shown << " more totalling "
         << std::setprecision(2) << ms(rest) << " ms";
    }
    os << "\n";
    if (queue_wait_count > 0) {
      os << "  enqueue->start wait: mean " << std::setprecision(1)
         << static_cast<double>(queue_wait_total) /
                (1e3 * static_cast<double>(queue_wait_count))
         << " us, max " << static_cast<double>(queue_wait_max) / 1e3
         << " us over " << queue_wait_count << " tasks\n";
    }
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace dlb::obs
