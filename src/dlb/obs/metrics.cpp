#include "dlb/obs/metrics.hpp"

#include <cstring>

namespace dlb::obs {

std::uint64_t metrics_snapshot::counter(const char* name) const {
  for (const auto& [key, value] : counters) {
    if (std::strcmp(key, name) == 0) return value;
  }
  return 0;
}

metrics_snapshot metrics::take() const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  metrics_snapshot s;
  // Fixed order: the sidecar serialization and the --obs-extras allow-list
  // both depend on it being stable.
  s.counters = {
      {"phases", load(phases_)},
      {"edges_touched", load(edges_touched_)},
      {"nodes_touched", load(nodes_touched_)},
      {"tokens_moved", load(tokens_moved_)},
      {"rounds", load(rounds_)},
      {"arrivals", load(arrivals_)},
      {"served", load(served_)},
      {"events_dispatched", load(events_dispatched_)},
      {"barrier_wait_ns", load(barrier_wait_ns_)},
  };
  s.barrier_wait_hist = barrier_wait_.snapshot();
  s.queue_depth_hist = queue_depth_.snapshot();
  return s;
}

}  // namespace dlb::obs
