#include "dlb/obs/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace dlb::obs {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_recorder_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  // dlb-lint: allow(atomic-claim): process-lifetime recorder-id allocation; ids never reach rows
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of "my buffer in recorder X". Keyed by the recorder's
/// unique id, not its address: a new recorder at a recycled address must not
/// inherit a dead recorder's cache entry.
struct tl_cache {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local tl_cache tls;

}  // namespace

recorder::recorder() : id_(next_recorder_id()), epoch_ns_(steady_ns()) {}

recorder::~recorder() = default;

std::int64_t recorder::now() const noexcept {
  return steady_ns() - epoch_ns_;
}

recorder::buffer& recorder::local() {
  if (tls.recorder_id == id_) {
    return *static_cast<buffer*>(tls.buffer);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<buffer>());
  buffer& buf = *buffers_.back();
  buf.tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  buf.spans.reserve(1024);
  tls = {id_, &buf};
  return buf;
}

void recorder::complete(const char* name, std::int64_t ts_ns,
                        std::int64_t dur_ns, std::int32_t shard,
                        std::uint64_t cell, std::int64_t arg) {
  buffer& buf = local();
  buf.spans.push_back({name, ts_ns, dur_ns, arg, cell, buf.tid, shard});
}

std::uint64_t recorder::register_cell(std::string grid, std::string scenario,
                                      std::string process,
                                      std::uint64_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  cell_record rec;
  rec.id = cells_.size();
  rec.index = index;
  rec.grid = std::move(grid);
  rec.scenario = std::move(scenario);
  rec.process = std::move(process);
  cells_.push_back(std::move(rec));
  return cells_.back().id;
}

void recorder::finish_cell(std::uint64_t id, const metrics_snapshot& snapshot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  cells_[static_cast<std::size_t>(id)].snapshot = snapshot;
  cells_[static_cast<std::size_t>(id)].finished = true;
}

std::vector<span_record> recorder::events() const {
  std::vector<span_record> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const span_record& a, const span_record& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::vector<cell_record> recorder::cells() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cells_;
}

recorder_footprint recorder::footprint() const {
  recorder_footprint fp;
  const std::lock_guard<std::mutex> lock(mutex_);
  fp.threads = buffers_.size();
  for (const auto& buf : buffers_) {
    fp.spans += buf->spans.size();
    fp.bytes += buf->spans.capacity() * sizeof(span_record);
  }
  return fp;
}

}  // namespace dlb::obs
