// The observability attachment point: a probe bundles the (optional) trace
// recorder and the (optional) per-cell metrics a component should report to.
//
// Everything in dlb::obs is strictly opt-in and must never perturb results:
// instrumented code branches on the null pointers below and otherwise reads
// only clocks and bumps relaxed atomics — it never touches RNG streams,
// floating-point evaluation order, or any serialized row field. Rows are
// byte-identical with a probe attached or not, at any thread or shard-thread
// count (tests/obs_test.cpp enforces this).
#pragma once

#include <cstdint>

namespace dlb::obs {

class recorder;
class metrics;

namespace prof {
class profiler;
}

/// Sentinel for spans not attributed to any experiment cell.
inline constexpr std::uint64_t no_cell = ~std::uint64_t{0};

/// Non-owning handles to the active recorder/metrics/profiler plus the cell
/// id the spans should be attributed to. Default-constructed =
/// observability off. `prf` sits after `cell` so the pre-profiler aggregate
/// initializations ({rec, met, cell}) keep their meaning.
struct probe {
  recorder* rec = nullptr;  ///< span sink, or nullptr (no tracing)
  metrics* met = nullptr;   ///< counter sink, or nullptr (no counting)
  std::uint64_t cell = no_cell;  ///< recorder cell id (recorder::register_cell)
  prof::profiler* prf = nullptr;  ///< hw-counter sink, or nullptr (no prof)

  /// True when any sink is attached — the single branch disabled paths take.
  [[nodiscard]] bool active() const noexcept {
    return rec != nullptr || met != nullptr || prf != nullptr;
  }
};

}  // namespace dlb::obs
