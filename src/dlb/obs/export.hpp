// Exporters for recorded traces: Chrome/Perfetto trace-event JSON, the
// per-cell metrics sidecar, and the human --obs-summary table.
//
// All three read the recorder after the run — they never touch the hot path.
#pragma once

#include <iosfwd>

#include "dlb/obs/recorder.hpp"

namespace dlb::obs {

/// Chrome trace-event JSON: an object with a "traceEvents" array of complete
/// ("ph":"X") events in microseconds. Loads in ui.perfetto.dev and
/// chrome://tracing; tools/summarize_trace.py aggregates it offline.
void write_chrome_trace(std::ostream& os, const recorder& rec);

/// Per-cell metrics snapshots as a JSON array (one object per registered
/// cell: identity, counters, histograms) — the sidecar `--trace` writes next
/// to the trace file.
void write_metrics_sidecar(std::ostream& os, const recorder& rec);

/// Presentation knobs for write_summary.
struct summary_options {
  /// How many of the busiest worker tids the pool-utilization line names
  /// individually (`--obs-summary-top`); the rest always fold into an
  /// explicit "+N more totalling X ms" aggregate — never a silent cut.
  std::size_t top_tids = 8;
};

/// Human summary: top span names by total time, per-phase shard skew
/// (slowest shard vs mean shard), and pool-task utilization / queue-wait —
/// what `dlb_run --obs-summary` prints to stderr.
void write_summary(std::ostream& os, const recorder& rec,
                   const summary_options& options = {});

}  // namespace dlb::obs
