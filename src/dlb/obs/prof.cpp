#include "dlb/obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "dlb/obs/recorder.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dlb::obs::prof {

namespace {

// The profiler reads its own steady clock so samples are self-contained —
// a sample's wall_ns never depends on which recorder (if any) is attached.
// (This file is on dlb_lint's wall-clock and prof-syscall allowlists: it IS
// the timing/counter instrument the rules fence everything else away from.)
std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_profiler_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  // dlb-lint: allow(atomic-claim): process-lifetime profiler-id allocation; ids never reach rows
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of "my buffer in profiler X" — same idiom (and same
/// reasoning: keyed by id, not address) as the recorder's cache.
struct tl_cache {
  std::uint64_t profiler_id = 0;
  void* buffer = nullptr;
};
thread_local tl_cache tls;

constexpr const char* kHwNames[num_hw] = {
    "cycles", "instructions", "cache_references", "cache_misses",
    "branch_misses",
};

#if defined(__linux__)

constexpr std::uint64_t kHwConfigs[num_hw] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

/// One perf fd group measuring *this thread*, opened lazily on the thread's
/// first hardware read and closed when the thread exits (thread_local
/// destructor) — so per-cell shard pools that come and go never accumulate
/// open fds for dead threads. The group is profiler-independent: the
/// counters measure the thread, any hardware-backend profiler may read them.
struct perf_group {
  int fds[num_hw] = {-1, -1, -1, -1, -1};
  bool tried = false;
  bool ok = false;
  std::string fail_reason;  ///< from the first (only) failed open attempt

  ~perf_group() { close_all(); }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    ok = false;
  }

  /// Opens the five-counter group. On failure closes everything, stores the
  /// failing counter + errno in `reason`, and never retries on this thread.
  bool ensure_open(std::string* reason) {
    if (tried) {
      // A later profiler on this thread must still learn why the first
      // attempt failed (the syscall is never retried).
      if (!ok && reason != nullptr) *reason = fail_reason;
      return ok;
    }
    tried = true;
    for (std::size_t i = 0; i < num_hw; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.size = sizeof(attr);
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = kHwConfigs[i];
      attr.disabled = 0;
      attr.exclude_kernel = 1;  // user-space only: works at paranoid <= 2
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP;
      const int group_fd = i == 0 ? -1 : fds[0];
      const long fd = ::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                /*cpu=*/-1, group_fd, /*flags=*/0UL);
      if (fd < 0) {
        std::ostringstream os;
        os << "perf_event_open(" << kHwNames[i]
           << ") failed: " << std::strerror(errno);
        if (errno == EACCES || errno == EPERM) {
          os << " (check /proc/sys/kernel/perf_event_paranoid or container "
                "seccomp policy)";
        }
        fail_reason = os.str();
        if (reason != nullptr) *reason = fail_reason;
        close_all();
        return false;
      }
      fds[i] = static_cast<int>(fd);
    }
    ok = true;
    return true;
  }

  /// Reads all five counters atomically via the group leader.
  bool read_values(std::array<std::uint64_t, num_hw>& out) {
    if (!ok) return false;
    // PERF_FORMAT_GROUP layout: u64 nr, then nr values in open order.
    std::uint64_t buf[1 + num_hw] = {};
    const ssize_t got = ::read(fds[0], buf, sizeof(buf));
    if (got != static_cast<ssize_t>(sizeof(buf)) || buf[0] != num_hw) {
      return false;
    }
    for (std::size_t i = 0; i < num_hw; ++i) out[i] = buf[1 + i];
    return true;
  }
};

thread_local perf_group tl_group;

#endif  // defined(__linux__)

bool force_fallback_env() {
  const char* v = std::getenv("DLB_PROF_FORCE_FALLBACK");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

double safe_div(double num, double den) noexcept {
  return den > 0.0 ? num / den : 0.0;
}

/// %.6g formatting: locale-independent, no exponent surprises for the value
/// ranges we emit, and identical across the compilers CI runs.
void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string format_ms(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

const char* hw_name(std::size_t i) noexcept { return kHwNames[i]; }

profiler::profiler() : id_(next_profiler_id()) {
  if (force_fallback_env()) {
    fallback_reason_ = "forced by DLB_PROF_FORCE_FALLBACK=1";
  } else {
#if defined(__linux__)
    // Probe on the constructing thread: if the syscall is denied here it is
    // denied everywhere in this process, so later per-thread opens cannot
    // introduce a surprise mid-run.
    std::string reason;
    if (tl_group.ensure_open(&reason)) {
      hardware_ = true;
    } else {
      fallback_reason_ = reason;
    }
#else
    fallback_reason_ = "perf_event_open is Linux-only on this platform";
#endif
  }
  if (!hardware_) {
    // Reported once per profiler (dlb_run builds exactly one), never fatal:
    // wall-clock skew attribution still works without hardware counters.
    std::fprintf(stderr,
                 "dlb prof: hardware counters unavailable (%s); continuing "
                 "with wall-clock-only profiling\n",
                 fallback_reason_.c_str());
  }
}

profiler::~profiler() = default;

bool profiler::hardware_available() const noexcept { return hardware_; }

const std::string& profiler::fallback_reason() const noexcept {
  return fallback_reason_;
}

profiler::buffer& profiler::local() {
  if (tls.profiler_id == id_) {
    return *static_cast<buffer*>(tls.buffer);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<buffer>());
  buffer& buf = *buffers_.back();
  buf.tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  buf.samples.reserve(1024);
  tls = {id_, &buf};
  return buf;
}

hw_reading profiler::begin() {
  hw_reading r;
#if defined(__linux__)
  if (hardware_ && tl_group.ensure_open(nullptr)) {
    r.available = tl_group.read_values(r.value);
  }
#endif
  r.wall_ns = steady_ns();
  return r;
}

void profiler::complete(const char* name, std::int32_t shard,
                        std::uint64_t cell, const hw_reading& start) {
  sample_record s;
  s.name = name;
  s.cell = cell;
  s.shard = shard;
  s.wall_ns = steady_ns() - start.wall_ns;
#if defined(__linux__)
  if (start.available) {
    std::array<std::uint64_t, num_hw> end{};
    if (tl_group.read_values(end)) {
      for (std::size_t i = 0; i < num_hw; ++i) {
        // Counters are monotonic per thread; a migrating task never reads
        // backwards, but clamp anyway so a kernel quirk cannot wrap.
        s.delta[i] = end[i] >= start.value[i] ? end[i] - start.value[i] : 0;
      }
      s.available = true;
    }
  }
#else
  (void)start;
#endif
  buffer& buf = local();
  s.tid = buf.tid;
  buf.samples.push_back(s);
}

std::vector<sample_record> profiler::samples() const {
  std::vector<sample_record> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    out.insert(out.end(), buf->samples.begin(), buf->samples.end());
  }
  return out;
}

buffer_footprint profiler::footprint() const {
  buffer_footprint fp;
  const std::lock_guard<std::mutex> lock(mutex_);
  fp.threads = buffers_.size();
  for (const auto& buf : buffers_) {
    fp.records += buf->samples.size();
    fp.bytes += buf->samples.capacity() * sizeof(sample_record);
  }
  return fp;
}

// ---------------------------------------------------------------------------
// Post-run skew analysis
// ---------------------------------------------------------------------------

double shard_stat::ipc() const noexcept {
  return safe_div(static_cast<double>(hw[static_cast<std::size_t>(
                      hw::instructions)]),
                  static_cast<double>(hw[static_cast<std::size_t>(
                      hw::cycles)]));
}

double shard_stat::cache_miss_rate() const noexcept {
  return safe_div(static_cast<double>(hw[static_cast<std::size_t>(
                      hw::cache_misses)]),
                  static_cast<double>(hw[static_cast<std::size_t>(
                      hw::cache_references)]));
}

memory_profile sample_memory(const recorder* rec, const profiler* pf) {
  memory_profile mem;
#if defined(__unix__) || defined(__APPLE__) || defined(__linux__)
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    mem.max_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
    mem.max_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
  }
#endif
#if defined(__linux__)
  // VmHWM is the true heap+stack high-water; ru_maxrss can under-report
  // after memory is returned. Missing file (non-proc mounts) just leaves 0.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    std::uint64_t* slot = nullptr;
    if (line.rfind("VmHWM:", 0) == 0) slot = &mem.vm_hwm_kb;
    if (line.rfind("VmRSS:", 0) == 0) slot = &mem.vm_rss_kb;
    if (slot != nullptr) {
      std::istringstream fields(line.substr(line.find(':') + 1));
      fields >> *slot;
    }
  }
#endif
  if (rec != nullptr) {
    const recorder_footprint fp = rec->footprint();
    mem.recorder = {fp.threads, fp.spans, fp.bytes};
  }
  if (pf != nullptr) mem.profiler = pf->footprint();
  return mem;
}

namespace {

bool is_round_span(const char* name) noexcept {
  return std::strcmp(name, "round") == 0 || std::strcmp(name, "tA_round") == 0;
}

std::int64_t nearest_rank_p99(std::vector<std::int64_t> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace

profile_report analyze_profile(const recorder& rec, const profiler& pf) {
  profile_report report;
  report.hardware_available = pf.hardware_available();
  report.fallback_reason = pf.fallback_reason();
  report.memory = sample_memory(&rec, &pf);

  struct cell_accum {
    std::uint64_t rounds = 0;
    std::int64_t round_wall_ns = 0;
    std::int64_t barrier_wait_ns = 0;
    std::int32_t max_shard = -1;
    // (phase name, shard) -> totals. std::map keeps phases name-sorted and
    // shards id-sorted, which is what makes the sidecar order deterministic.
    std::map<std::string, std::map<std::int32_t, shard_stat>> phases;
  };
  std::map<std::uint64_t, cell_accum> accums;

  for (const sample_record& s : pf.samples()) {
    if (s.cell == no_cell) continue;  // pool warmup etc. — not attributable
    cell_accum& acc = accums[s.cell];
    shard_stat& st = acc.phases[s.name][s.shard];
    if (st.calls == 0) {
      st.shard = s.shard;
      st.hw_available = s.available;
    }
    st.calls += 1;
    st.wall_ns += s.wall_ns;
    st.hw_available = st.hw_available && s.available;
    for (std::size_t i = 0; i < num_hw; ++i) st.hw[i] += s.delta[i];
    acc.max_shard = std::max(acc.max_shard, s.shard);
  }

  for (const span_record& span : rec.events()) {
    if (span.cell == no_cell || span.name == nullptr) continue;
    cell_accum& acc = accums[span.cell];
    if (is_round_span(span.name)) {
      acc.rounds += 1;
      acc.round_wall_ns += span.dur_ns;
    } else if (std::strncmp(span.name, "barrier:", 8) == 0) {
      acc.barrier_wait_ns += span.dur_ns;
      // Credit the wait to the phase it guards so per-shard barrier columns
      // line up with the matching profiler samples.
      shard_stat& st = acc.phases[span.name + 8][span.shard];
      if (st.calls == 0) st.shard = span.shard;
      st.barrier_wait_ns += span.dur_ns;
      acc.max_shard = std::max(acc.max_shard, span.shard);
    }
  }

  for (const cell_record& cell : rec.cells()) {
    const auto it = accums.find(cell.id);
    if (it == accums.end()) continue;  // cell ran without profiling attached
    const cell_accum& acc = it->second;

    cell_profile cp;
    cp.cell = cell.id;
    cp.grid = cell.grid;
    cp.scenario = cell.scenario;
    cp.process = cell.process;
    cp.rounds = acc.rounds;
    cp.round_wall_ns = acc.round_wall_ns;
    cp.barrier_wait_ns = acc.barrier_wait_ns;

    std::int64_t all_phase_wall = 0;
    for (const auto& [name, shards] : acc.phases) {
      phase_profile pp;
      pp.phase = name;
      std::vector<std::int64_t> walls;
      for (const auto& [shard, st] : shards) {
        pp.shards.push_back(st);
        pp.calls += st.calls;
        pp.wall_total_ns += st.wall_ns;
        pp.barrier_wait_ns += st.barrier_wait_ns;
        walls.push_back(st.wall_ns);
        if (st.wall_ns > pp.wall_slowest_ns) {
          pp.wall_slowest_ns = st.wall_ns;
          pp.slowest_shard = st.shard;
        }
      }
      if (!pp.shards.empty()) {
        pp.wall_mean_ns =
            pp.wall_total_ns / static_cast<std::int64_t>(pp.shards.size());
      }
      pp.wall_p99_ns = nearest_rank_p99(std::move(walls));
      pp.skew = safe_div(static_cast<double>(pp.wall_slowest_ns),
                         static_cast<double>(pp.wall_mean_ns));
      all_phase_wall += pp.wall_total_ns;
      cp.phases.push_back(std::move(pp));
    }

    // Share of aggregate shard-time spent waiting: the barriers accumulate
    // one wait per shard per phase, so the matching denominator is round
    // wall time multiplied by the shard count (falling back to summed phase
    // wall when no round spans exist, e.g. bare step() calls).
    const std::int64_t shard_count =
        acc.max_shard >= 0 ? acc.max_shard + 1 : 1;
    const std::int64_t denom = acc.round_wall_ns > 0
                                   ? acc.round_wall_ns * shard_count
                                   : all_phase_wall + acc.barrier_wait_ns;
    cp.barrier_wait_share =
        std::min(1.0, safe_div(static_cast<double>(acc.barrier_wait_ns),
                               static_cast<double>(denom)));
    report.cells.push_back(std::move(cp));
  }
  return report;
}

void write_profile_json(std::ostream& os, const profile_report& report) {
  os << "{\n";
  os << "  \"schema\": \"dlb-profile-v1\",\n";
  os << "  \"backend\": "
     << (report.hardware_available ? "\"perf_event\"" : "\"fallback\"")
     << ",\n";
  os << "  \"fallback_reason\": ";
  write_json_string(os, report.fallback_reason);
  os << ",\n";
  const memory_profile& mem = report.memory;
  os << "  \"memory\": {\"max_rss_kb\": " << mem.max_rss_kb
     << ", \"vm_hwm_kb\": " << mem.vm_hwm_kb
     << ", \"vm_rss_kb\": " << mem.vm_rss_kb
     << ", \"recorder_threads\": " << mem.recorder.threads
     << ", \"recorder_spans\": " << mem.recorder.records
     << ", \"recorder_bytes\": " << mem.recorder.bytes
     << ", \"profiler_samples\": " << mem.profiler.records
     << ", \"profiler_bytes\": " << mem.profiler.bytes << "},\n";
  os << "  \"cells\": [";
  bool first_cell = true;
  for (const cell_profile& cp : report.cells) {
    os << (first_cell ? "\n" : ",\n");
    first_cell = false;
    os << "    {\"cell\": " << cp.cell << ", \"grid\": ";
    write_json_string(os, cp.grid);
    os << ", \"scenario\": ";
    write_json_string(os, cp.scenario);
    os << ", \"process\": ";
    write_json_string(os, cp.process);
    os << ",\n     \"rounds\": " << cp.rounds
       << ", \"round_wall_ns\": " << cp.round_wall_ns
       << ", \"barrier_wait_ns\": " << cp.barrier_wait_ns
       << ", \"barrier_wait_share\": ";
    write_double(os, cp.barrier_wait_share);
    os << ",\n     \"phases\": [";
    bool first_phase = true;
    for (const phase_profile& pp : cp.phases) {
      os << (first_phase ? "\n" : ",\n");
      first_phase = false;
      os << "      {\"phase\": ";
      write_json_string(os, pp.phase);
      os << ", \"shards\": " << pp.shards.size()
         << ", \"calls\": " << pp.calls
         << ", \"wall_total_ns\": " << pp.wall_total_ns
         << ", \"wall_mean_ns\": " << pp.wall_mean_ns
         << ", \"wall_slowest_ns\": " << pp.wall_slowest_ns
         << ", \"wall_p99_ns\": " << pp.wall_p99_ns
         << ", \"slowest_shard\": " << pp.slowest_shard << ", \"skew\": ";
      write_double(os, pp.skew);
      os << ", \"barrier_wait_ns\": " << pp.barrier_wait_ns;
      os << ",\n       \"per_shard\": [";
      bool first_shard = true;
      for (const shard_stat& st : pp.shards) {
        os << (first_shard ? "\n" : ",\n");
        first_shard = false;
        os << "        {\"shard\": " << st.shard << ", \"calls\": " << st.calls
           << ", \"wall_ns\": " << st.wall_ns
           << ", \"barrier_wait_ns\": " << st.barrier_wait_ns
           << ", \"hw_available\": " << (st.hw_available ? "true" : "false");
        for (std::size_t i = 0; i < num_hw; ++i) {
          os << ", \"" << kHwNames[i] << "\": " << st.hw[i];
        }
        os << ", \"ipc\": ";
        write_double(os, st.hw_available ? st.ipc() : 0.0);
        os << ", \"cache_miss_rate\": ";
        write_double(os, st.hw_available ? st.cache_miss_rate() : 0.0);
        os << "}";
      }
      os << (first_shard ? "]" : "\n       ]") << "}";
    }
    os << (first_phase ? "]" : "\n     ]") << "}";
  }
  os << (first_cell ? "]" : "\n  ]") << "\n}\n";
}

void write_profile_table(std::ostream& os, const profile_report& report) {
  os << "profile: backend="
     << (report.hardware_available ? "perf_event" : "fallback");
  if (!report.hardware_available) {
    os << " (" << report.fallback_reason << ")";
  }
  os << "\n";
  const memory_profile& mem = report.memory;
  os << "memory: max_rss=" << mem.max_rss_kb << "kB vm_hwm=" << mem.vm_hwm_kb
     << "kB recorder=" << mem.recorder.records << " spans/"
     << mem.recorder.bytes / 1024 << "kB profiler=" << mem.profiler.records
     << " samples/" << mem.profiler.bytes / 1024 << "kB\n";
  for (const cell_profile& cp : report.cells) {
    char share[32];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  cp.barrier_wait_share * 100.0);
    os << "cell " << cp.cell << " " << cp.grid << " [" << cp.process << " @ "
       << cp.scenario << "]: rounds=" << cp.rounds
       << " round_wall=" << format_ms(cp.round_wall_ns)
       << " barrier_share=" << share << "\n";
    os << "  " << std::left << std::setw(20) << "phase" << std::right
       << std::setw(7) << "shards" << std::setw(11) << "total" << std::setw(11)
       << "mean" << std::setw(14) << "slowest" << std::setw(11) << "p99"
       << std::setw(7) << "skew" << std::setw(11) << "barrier" << std::setw(7)
       << "IPC" << std::setw(8) << "miss%" << "\n";
    for (const phase_profile& pp : cp.phases) {
      // Cell-wide IPC / miss-rate from the summed per-shard counters; a
      // single unavailable shard poisons the aggregate so it prints "-".
      bool hw_ok = !pp.shards.empty();
      std::uint64_t instr = 0;
      std::uint64_t cycles = 0;
      std::uint64_t refs = 0;
      std::uint64_t misses = 0;
      for (const shard_stat& st : pp.shards) {
        hw_ok = hw_ok && st.hw_available;
        instr += st.hw[static_cast<std::size_t>(hw::instructions)];
        cycles += st.hw[static_cast<std::size_t>(hw::cycles)];
        refs += st.hw[static_cast<std::size_t>(hw::cache_references)];
        misses += st.hw[static_cast<std::size_t>(hw::cache_misses)];
      }
      char skew[16];
      std::snprintf(skew, sizeof(skew), "%.2f", pp.skew);
      std::string slowest = format_ms(pp.wall_slowest_ns);
      slowest += " (#" + std::to_string(pp.slowest_shard) + ")";
      os << "  " << std::left << std::setw(20) << pp.phase << std::right
         << std::setw(7) << pp.shards.size() << std::setw(11)
         << format_ms(pp.wall_total_ns) << std::setw(11)
         << format_ms(pp.wall_mean_ns) << std::setw(14) << slowest
         << std::setw(11) << format_ms(pp.wall_p99_ns) << std::setw(7) << skew
         << std::setw(11) << format_ms(pp.barrier_wait_ns);
      if (hw_ok) {
        char ipc[16];
        std::snprintf(ipc, sizeof(ipc), "%.2f",
                      safe_div(static_cast<double>(instr),
                               static_cast<double>(cycles)));
        char miss[16];
        std::snprintf(miss, sizeof(miss), "%.1f",
                      safe_div(static_cast<double>(misses),
                               static_cast<double>(refs)) *
                          100.0);
        os << std::setw(7) << ipc << std::setw(8) << miss;
      } else {
        os << std::setw(7) << "-" << std::setw(8) << "-";
      }
      os << "\n";
    }
  }
}

}  // namespace dlb::obs::prof
