// Hardware-counter & shard-skew profiling on top of the trace recorder.
//
// A `prof::profiler` samples five hardware counters (cycles, instructions,
// cache-references, cache-misses, branch-misses) around every instrumented
// phase slice via one perf_event_open(2) fd group per participating thread.
// Where the syscall is unavailable — containers with seccomp filters,
// macOS, restrictive perf_event_paranoid, or the DLB_PROF_FORCE_FALLBACK=1
// test knob — the profiler degrades to a wall-clock-only backend: exactly
// one stderr notice, never a failure, and the sidecar keeps its full schema
// with every counter marked unavailable.
//
// Like the recorder, the profiler is strictly opt-in observation: sampling
// reads clocks and counter fds and appends to thread-private buffers. It
// never touches RNG streams, floating-point order, or serialized row bytes
// (tests/prof_test.cpp pins rows byte-identical with profiling on or off at
// shard-threads 1 and 8).
//
// Post-run, `analyze_profile` folds the profiler's samples together with the
// recorder's per-shard phase spans (barrier:<phase> waits, round spans) into
// per-cell per-phase skew statistics — slowest/mean/p99 shard, barrier-wait
// share of round time, IPC and cache-miss rate per shard — emitted as the
// deterministic-schema "dlb-profile-v1" JSON sidecar and a human table
// (dlb_run --obs-profile).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dlb/obs/probe.hpp"

namespace dlb::obs {
class recorder;
}

namespace dlb::obs::prof {

/// The fixed counter set, in fd-group (and sidecar) order.
inline constexpr std::size_t num_hw = 5;
enum class hw : std::size_t {
  cycles = 0,
  instructions = 1,
  cache_references = 2,
  cache_misses = 3,
  branch_misses = 4,
};

/// Sidecar key for counter slot `i` (i < num_hw).
[[nodiscard]] const char* hw_name(std::size_t i) noexcept;

/// Counter values captured at one instant on the calling thread, plus the
/// profiler's own steady-clock reading. `available` is false on the
/// fallback backend (wall_ns is still valid there).
struct hw_reading {
  std::int64_t wall_ns = 0;
  std::array<std::uint64_t, num_hw> value{};
  bool available = false;
};

/// One completed slice: counter deltas attributed to (name, shard, cell).
/// `name` must be a string literal, same contract as span_record.
struct sample_record {
  const char* name = nullptr;
  std::uint64_t cell = no_cell;
  std::int64_t wall_ns = 0;  ///< slice duration
  std::array<std::uint64_t, num_hw> delta{};
  std::int32_t shard = -1;
  std::uint32_t tid = 0;
  bool available = false;  ///< counters valid (hardware backend, same thread)
};

/// Buffer footprint of an observability sink — the "per-recorder allocation
/// counters" surfaced in the profile sidecar's memory section.
struct buffer_footprint {
  std::uint64_t threads = 0;  ///< per-thread buffers registered
  std::uint64_t records = 0;  ///< spans / samples held
  std::uint64_t bytes = 0;    ///< capacity actually reserved
};

class profiler {
 public:
  /// Probes backend availability once: DLB_PROF_FORCE_FALLBACK=1 or a failed
  /// trial perf_event_open selects the wall-clock-only fallback and prints a
  /// single stderr notice. Construction never throws for backend reasons.
  profiler();
  ~profiler();

  profiler(const profiler&) = delete;
  profiler& operator=(const profiler&) = delete;

  /// False when running on the wall-clock-only fallback backend.
  [[nodiscard]] bool hardware_available() const noexcept;

  /// Human-readable reason for the fallback, empty on the hardware backend.
  [[nodiscard]] const std::string& fallback_reason() const noexcept;

  /// Reads the calling thread's counter group (opening it on first use).
  /// On the fallback backend only the wall clock is read.
  [[nodiscard]] hw_reading begin();

  /// Closes the slice opened by begin() on the same thread and appends one
  /// sample to the calling thread's buffer. Lock-free after the thread's
  /// first sample.
  void complete(const char* name, std::int32_t shard, std::uint64_t cell,
                const hw_reading& start);

  /// All samples, merged across threads. Only valid when no instrumented
  /// work is in flight (same quiescence contract as recorder::events()).
  [[nodiscard]] std::vector<sample_record> samples() const;

  /// Sample-buffer footprint. Same quiescence contract.
  [[nodiscard]] buffer_footprint footprint() const;

 private:
  struct buffer {
    std::uint32_t tid = 0;
    std::vector<sample_record> samples;
  };

  buffer& local();

  const std::uint64_t id_;  ///< distinguishes profilers in thread_local caches
  bool hardware_ = false;
  std::string fallback_reason_;

  mutable std::mutex mutex_;  // guards the registry, not the buffers' samples
  std::vector<std::unique_ptr<buffer>> buffers_;
};

/// RAII sample: begin() at construction, complete() at destruction. A null
/// profiler makes both ends a no-op.
class scoped_sample {
 public:
  scoped_sample(profiler* pf, const char* name, std::int32_t shard = -1,
                std::uint64_t cell = no_cell)
      : pf_(pf), name_(name), shard_(shard), cell_(cell) {
    if (pf_ != nullptr) start_ = pf_->begin();
  }
  ~scoped_sample() {
    if (pf_ != nullptr) pf_->complete(name_, shard_, cell_, start_);
  }
  scoped_sample(const scoped_sample&) = delete;
  scoped_sample& operator=(const scoped_sample&) = delete;

 private:
  profiler* pf_;
  const char* name_;
  hw_reading start_;
  std::int32_t shard_;
  std::uint64_t cell_;
};

// ---------------------------------------------------------------------------
// Post-run skew analysis
// ---------------------------------------------------------------------------

/// Per (phase, shard) totals for one cell.
struct shard_stat {
  std::int32_t shard = -1;
  std::uint64_t calls = 0;
  std::int64_t wall_ns = 0;
  std::int64_t barrier_wait_ns = 0;  ///< from the recorder's barrier:* spans
  std::array<std::uint64_t, num_hw> hw{};
  bool hw_available = false;

  [[nodiscard]] double ipc() const noexcept;
  [[nodiscard]] double cache_miss_rate() const noexcept;
};

/// One phase of one cell, aggregated over shards.
struct phase_profile {
  std::string phase;
  std::vector<shard_stat> shards;  ///< sorted by shard id
  std::uint64_t calls = 0;
  std::int64_t wall_total_ns = 0;
  std::int64_t wall_mean_ns = 0;     ///< mean per-shard wall total
  std::int64_t wall_slowest_ns = 0;  ///< max per-shard wall total
  std::int64_t wall_p99_ns = 0;      ///< nearest-rank p99 per-shard wall total
  std::int32_t slowest_shard = -1;
  double skew = 0.0;  ///< slowest / mean, 1.0 = perfectly balanced
  std::int64_t barrier_wait_ns = 0;
};

struct cell_profile {
  std::uint64_t cell = 0;
  std::string grid;
  std::string scenario;
  std::string process;
  std::uint64_t rounds = 0;       ///< count of round/tA_round spans
  std::int64_t round_wall_ns = 0; ///< summed round-span wall time
  std::int64_t barrier_wait_ns = 0;
  /// Share of aggregate shard-time spent waiting at barriers:
  /// barrier_wait_ns / (round_wall_ns * max shard count), clamped to [0, 1].
  double barrier_wait_share = 0.0;
  std::vector<phase_profile> phases;  ///< sorted by phase name
};

struct memory_profile {
  std::uint64_t max_rss_kb = 0;  ///< getrusage ru_maxrss (0 if unavailable)
  std::uint64_t vm_hwm_kb = 0;   ///< /proc/self/status VmHWM (0 if absent)
  std::uint64_t vm_rss_kb = 0;   ///< /proc/self/status VmRSS (0 if absent)
  buffer_footprint recorder;
  buffer_footprint profiler;
};

struct profile_report {
  bool hardware_available = false;
  std::string fallback_reason;
  memory_profile memory;
  std::vector<cell_profile> cells;  ///< recorder cell-registration order
};

/// Process-wide memory high-water marks plus sink footprints. Reads
/// getrusage and /proc/self/status; fields that cannot be read stay 0.
[[nodiscard]] memory_profile sample_memory(const recorder* rec,
                                           const profiler* pf);

/// Joins the profiler's samples with the recorder's spans into per-cell
/// per-phase skew statistics. Both must be quiescent.
[[nodiscard]] profile_report analyze_profile(const recorder& rec,
                                             const profiler& pf);

/// The "dlb-profile-v1" sidecar: fixed key set and order, so downstream
/// tooling (tools/check_profile.py) can validate the schema byte-for-byte.
void write_profile_json(std::ostream& os, const profile_report& report);

/// Human-readable skew table (dlb_run --obs-profile prints this to stderr).
void write_profile_table(std::ostream& os, const profile_report& report);

}  // namespace dlb::obs::prof
