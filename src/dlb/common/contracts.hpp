// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6/I.8: Expects/Ensures). Violations throw so that tests can assert on
// misuse without aborting the whole process.
#pragma once

#include <stdexcept>
#include <string>

namespace dlb {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class contract_violation : public std::logic_error {
 public:
  explicit contract_violation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw contract_violation(std::string(kind) + " failed: (" + expr + ") at " +
                           file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace dlb

/// Precondition check: validates arguments at public API boundaries.
#define DLB_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dlb::detail::contract_fail("precondition", #cond, __FILE__,        \
                                   __LINE__);                              \
  } while (false)

/// Postcondition check: validates results before returning them.
#define DLB_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dlb::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                   __LINE__);                              \
  } while (false)

/// Internal invariant check; same mechanism, different label for diagnosis.
#define DLB_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dlb::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
