// Basic scalar and index types shared by every dlb module.
#pragma once

#include <cstdint>
#include <limits>

namespace dlb {

/// Node index in a graph. Nodes are always numbered 0..n-1.
using node_id = std::int32_t;

/// Edge index in a graph. Edges are numbered 0..m-1 in builder order.
using edge_id = std::int32_t;

/// Integer load / task weight. Task weights are positive integers (paper §3),
/// so every discrete load, flow, and transfer is an exact integer.
using weight_t = std::int64_t;

/// Real-valued load / flow used by continuous processes.
using real_t = double;

/// Round counter. Balancing times can be large (e.g. n·d³ bounds), keep 64-bit.
using round_t = std::int64_t;

/// Sentinel for "no node".
inline constexpr node_id invalid_node = -1;

/// Sentinel for "no edge".
inline constexpr edge_id invalid_edge = -1;

/// Comparison slack for real-valued flow bookkeeping. Chosen so that
/// accumulated floating-point error over any realistic horizon (<=1e9
/// operations at magnitudes <=1e12) stays far below the discrete quantum of 1.
inline constexpr real_t flow_epsilon = 1e-9;

}  // namespace dlb
