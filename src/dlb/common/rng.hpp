// Seeded random number utilities. No global RNG state anywhere in dlb:
// every randomized component receives an explicit seed or engine so that
// whole experiments are reproducible from a single master seed.
#pragma once

#include <cstdint>
#include <random>

namespace dlb {

/// The engine used throughout the library.
using rng_t = std::mt19937_64;

/// Derives a stream-specific seed from a master seed. Uses the SplitMix64
/// finalizer so that nearby (master, stream) pairs yield decorrelated seeds.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t master,
                                               std::uint64_t stream) noexcept {
  std::uint64_t z = master + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Constructs an engine for a (master seed, stream id) pair.
[[nodiscard]] inline rng_t make_rng(std::uint64_t master,
                                    std::uint64_t stream = 0) {
  return rng_t{derive_seed(master, stream)};
}

/// Bernoulli draw with success probability p in [0,1].
[[nodiscard]] inline bool bernoulli(rng_t& rng, double p) {
  return std::bernoulli_distribution{p}(rng);
}

/// Uniform integer in [lo, hi] inclusive.
template <typename Int>
[[nodiscard]] Int uniform_int(rng_t& rng, Int lo, Int hi) {
  return std::uniform_int_distribution<Int>{lo, hi}(rng);
}

/// Uniform real in [lo, hi).
[[nodiscard]] inline double uniform_real(rng_t& rng, double lo = 0.0,
                                         double hi = 1.0) {
  return std::uniform_real_distribution<double>{lo, hi}(rng);
}

}  // namespace dlb
