// Seeded random number utilities. No global RNG state anywhere in dlb:
// every randomized component receives an explicit seed or engine so that
// whole experiments are reproducible from a single master seed.
#pragma once

#include <cstdint>
#include <random>

namespace dlb {

/// The engine used throughout the library.
using rng_t = std::mt19937_64;

/// Derives a stream-specific seed from a master seed. Uses the SplitMix64
/// finalizer so that nearby (master, stream) pairs yield decorrelated seeds.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t master,
                                               std::uint64_t stream) noexcept {
  std::uint64_t z = master + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Constructs an engine for a (master seed, stream id) pair.
[[nodiscard]] inline rng_t make_rng(std::uint64_t master,
                                    std::uint64_t stream = 0) {
  return rng_t{derive_seed(master, stream)};
}

/// Counter-based RNG stream: every output is the SplitMix64 finalizer of
/// (seed, key, counter) — a pure function of its inputs, with no carried
/// engine state. Sharded randomized processes draw through one counter_rng
/// per (entity, round), so the draw a given edge/node/walker sees never
/// depends on which shard — or in which order — the entities are visited.
/// Satisfies UniformRandomBitGenerator, so the helpers below accept it.
class counter_rng {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  counter_rng(std::uint64_t seed, std::uint64_t key)
      : base_(derive_seed(seed, key)) {}

  result_type operator()() noexcept { return derive_seed(base_, counter_++); }

 private:
  std::uint64_t base_;
  std::uint64_t counter_ = 0;
};

/// Bernoulli draw with success probability p in [0,1].
template <typename Rng>
[[nodiscard]] bool bernoulli(Rng& rng, double p) {
  return std::bernoulli_distribution{p}(rng);
}

/// Uniform integer in [lo, hi] inclusive.
template <typename Int, typename Rng>
[[nodiscard]] Int uniform_int(Rng& rng, Int lo, Int hi) {
  return std::uniform_int_distribution<Int>{lo, hi}(rng);
}

/// Uniform real in [lo, hi).
template <typename Rng>
[[nodiscard]] double uniform_real(Rng& rng, double lo = 0.0,
                                  double hi = 1.0) {
  return std::uniform_real_distribution<double>{lo, hi}(rng);
}

}  // namespace dlb
