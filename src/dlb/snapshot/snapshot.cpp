#include "dlb/snapshot/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace dlb::snapshot {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw contract_violation("snapshot: " + message);
}

std::string tag_name(field_tag t) {
  switch (t) {
    case field_tag::u8: return "u8";
    case field_tag::u64: return "u64";
    case field_tag::i64: return "i64";
    case field_tag::f64: return "f64";
    case field_tag::str: return "str";
    case field_tag::vec_i64: return "vec_i64";
    case field_tag::vec_f64: return "vec_f64";
    case field_tag::section: return "section";
  }
  return "tag(" + std::to_string(static_cast<int>(t)) + ")";
}

constexpr std::size_t header_size = 8 + 4 + 8 + 8;

}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t k = 0; k < size; ++k) {
    h ^= data[k];
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---- writer -----------------------------------------------------------------

void writer::tag(field_tag t) {
  buf_.push_back(static_cast<std::uint8_t>(t));
}

void writer::raw_u32(std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void writer::raw_u64(std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void writer::begin_vec(field_tag t, std::size_t count) {
  tag(t);
  raw_u64(static_cast<std::uint64_t>(count));
}

void writer::section(std::string_view name) {
  tag(field_tag::section);
  raw_u64(name.size());
  buf_.insert(buf_.end(), name.begin(), name.end());
}

void writer::u8(std::uint8_t v) {
  tag(field_tag::u8);
  buf_.push_back(v);
}

void writer::u64(std::uint64_t v) {
  tag(field_tag::u64);
  raw_u64(v);
}

void writer::i64(std::int64_t v) {
  tag(field_tag::i64);
  raw_u64(static_cast<std::uint64_t>(v));
}

void writer::f64(double v) {
  tag(field_tag::f64);
  raw_u64(std::bit_cast<std::uint64_t>(v));
}

void writer::str(std::string_view s) {
  tag(field_tag::str);
  raw_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void writer::vec_f64(const std::vector<double>& v) {
  begin_vec(field_tag::vec_f64, v.size());
  for (const double x : v) raw_u64(std::bit_cast<std::uint64_t>(x));
}

std::vector<std::uint8_t> writer::framed() const {
  std::vector<std::uint8_t> out;
  out.reserve(header_size + buf_.size());
  // Byte-wise on purpose: a ranged insert from the char array trips a GCC 12
  // -O2 false positive (-Wstringop-overflow "writing 8 bytes into a region
  // of size 7"), which -Werror builds would reject.
  for (const char c : magic) out.push_back(static_cast<std::uint8_t>(c));
  const std::uint32_t version = format_version;
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>(version >> (8 * b)));
  }
  const auto size = static_cast<std::uint64_t>(buf_.size());
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(size >> (8 * b)));
  }
  const std::uint64_t checksum = fnv1a(buf_.data(), buf_.size());
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(checksum >> (8 * b)));
  }
  out.insert(out.end(), buf_.begin(), buf_.end());
  return out;
}

void writer::save_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = framed();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) fail("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("cannot rename " + tmp + " to " + path);
  }
}

// ---- reader -----------------------------------------------------------------

reader::reader(std::vector<std::uint8_t> payload) : buf_(std::move(payload)) {}

reader reader::from_bytes(const std::vector<std::uint8_t>& framed) {
  if (framed.size() < header_size) {
    fail("truncated: " + std::to_string(framed.size()) +
         " bytes is shorter than the header");
  }
  if (std::memcmp(framed.data(), magic, sizeof(magic)) != 0) {
    fail("bad magic (not a dlb snapshot)");
  }
  std::uint32_t version = 0;
  for (int b = 0; b < 4; ++b) {
    version |= static_cast<std::uint32_t>(framed[8 + static_cast<std::size_t>(b)])
               << (8 * b);
  }
  if (version != format_version) {
    fail("version " + std::to_string(version) + " unsupported (expected " +
         std::to_string(format_version) + ")");
  }
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  for (int b = 0; b < 8; ++b) {
    size |= static_cast<std::uint64_t>(framed[12 + static_cast<std::size_t>(b)])
            << (8 * b);
    checksum |=
        static_cast<std::uint64_t>(framed[20 + static_cast<std::size_t>(b)])
        << (8 * b);
  }
  if (framed.size() != header_size + size) {
    fail("truncated: header promises " + std::to_string(size) +
         " payload bytes, file carries " +
         std::to_string(framed.size() - header_size));
  }
  std::vector<std::uint8_t> payload(framed.begin() + header_size,
                                    framed.end());
  if (fnv1a(payload.data(), payload.size()) != checksum) {
    fail("checksum mismatch (payload corrupted)");
  }
  return reader(std::move(payload));
}

reader reader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return from_bytes(bytes);
}

void reader::need(std::size_t bytes) const {
  if (pos_ + bytes > buf_.size()) {
    fail("payload exhausted (needed " + std::to_string(bytes) +
         " more bytes at offset " + std::to_string(pos_) + ")");
  }
}

void reader::expect_tag(field_tag t) {
  need(1);
  const auto found = static_cast<field_tag>(buf_[pos_]);
  if (found != t) {
    fail("expected " + tag_name(t) + " at offset " + std::to_string(pos_) +
         ", found " + tag_name(found));
  }
  ++pos_;
}

std::uint64_t reader::raw_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(b)])
         << (8 * b);
  }
  pos_ += 8;
  return v;
}

std::uint64_t reader::begin_vec(field_tag t) {
  expect_tag(t);
  const std::uint64_t count = raw_u64();
  return count;
}

void reader::expect_section(std::string_view name) {
  expect_tag(field_tag::section);
  const std::uint64_t len = raw_u64();
  need(len);
  const std::string found(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                          buf_.begin() +
                              static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  if (found != name) {
    fail("expected section '" + std::string(name) + "', found '" + found +
         "'");
  }
}

std::uint8_t reader::u8() {
  expect_tag(field_tag::u8);
  need(1);
  return buf_[pos_++];
}

std::uint64_t reader::u64() {
  expect_tag(field_tag::u64);
  return raw_u64();
}

std::int64_t reader::i64() {
  expect_tag(field_tag::i64);
  return static_cast<std::int64_t>(raw_u64());
}

double reader::f64() {
  expect_tag(field_tag::f64);
  return std::bit_cast<double>(raw_u64());
}

std::string reader::str() {
  expect_tag(field_tag::str);
  const std::uint64_t len = raw_u64();
  need(len);
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return s;
}

std::vector<double> reader::vec_f64() {
  const std::uint64_t count = begin_vec(field_tag::vec_f64);
  std::vector<double> v;
  v.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    v.push_back(std::bit_cast<double>(raw_u64()));
  }
  return v;
}

void reader::expect_u64(std::uint64_t expected, std::string_view what) {
  const std::uint64_t found = u64();
  if (found != expected) {
    fail(std::string(what) + " mismatch: snapshot has " +
         std::to_string(found) + ", this object has " +
         std::to_string(expected));
  }
}

void reader::expect_str(std::string_view expected, std::string_view what) {
  const std::string found = str();
  if (found != expected) {
    fail(std::string(what) + " mismatch: snapshot has '" + found +
         "', this object has '" + std::string(expected) + "'");
  }
}

}  // namespace dlb::snapshot
