// dlb::snapshot — versioned, self-describing binary snapshot/restore of
// complete run state (ROADMAP item 5: long-lived service mode).
//
// A snapshot is a byte-exact capture of everything a process mutates while
// stepping: token pools, ledgers, auxiliary per-node state, round counters,
// and (for event-driven runs) the virtual clock and pending event-queue
// entries. RNG *engines* never appear in a snapshot — every draw in the repo
// is a counter-based pure function of (seed, round, entity), so restoring
// the round counter restores the randomness (docs/ARCHITECTURE.md).
//
// The exactness contract: restoring a snapshot into a freshly constructed
// process of the identical configuration and continuing yields bit-identical
// state — and therefore byte-identical result rows — to the uninterrupted
// run, at any shard count. Configuration (graph, speeds, schedules, seeds)
// is NOT serialized; the caller reconstructs it, and every writer embeds
// fingerprint fields (type tag, n, m, seeds) that restore verifies, so a
// snapshot loaded into the wrong object fails with one line instead of
// silently diverging.
//
// Wire format, all little-endian fixed width:
//   [8-byte magic "DLBSNAP\0"] [u32 version] [u64 payload size]
//   [u64 FNV-1a checksum of payload] [payload]
// The payload is a stream of tagged fields (a 1-byte type tag before every
// value) so truncation, reordering, or schema drift is caught at the exact
// field — reads throw contract_violation with a one-line message, never UB.
// Files are written atomically (tmp + rename): a crash mid-write leaves the
// previous snapshot intact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "dlb/common/contracts.hpp"

namespace dlb::snapshot {

/// File magic, first 8 bytes of every snapshot.
inline constexpr char magic[8] = {'D', 'L', 'B', 'S', 'N', 'A', 'P', '\0'};

/// Format version. Bump on any wire-format change; readers reject other
/// versions with a one-line error (tests pin this and a golden fixture).
inline constexpr std::uint32_t format_version = 1;

/// Field type tags (1 byte before every payload value).
enum class field_tag : std::uint8_t {
  u8 = 1,
  u64 = 2,
  i64 = 3,
  f64 = 4,
  str = 5,
  vec_i64 = 6,
  vec_f64 = 7,
  section = 8,
};

/// Accumulates a snapshot payload in memory; `save_file` frames and writes
/// it atomically.
class writer {
 public:
  /// Named section marker: readers must consume it with expect_section, so
  /// a writer/reader schema mismatch reports *which* component drifted.
  void section(std::string_view name);

  void u8(std::uint8_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Doubles are stored as their IEEE-754 bit pattern — restore is bit-exact.
  void f64(double v);
  void str(std::string_view s);
  void vec_f64(const std::vector<double>& v);

  /// Any integral vector, stored as i64 elements (node ids, weights, rounds).
  template <typename T>
  void vec_int(const std::vector<T>& v) {
    static_assert(std::is_integral_v<T>);
    begin_vec(field_tag::vec_i64, v.size());
    for (const T x : v) raw_u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(x)));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const {
    return buf_;
  }

  /// Frames the payload (magic, version, size, checksum) and writes it to
  /// `path` atomically: the bytes land in `path + ".tmp"` first and are
  /// renamed over `path` only after a successful close, so a crash — even a
  /// SIGKILL — mid-write never corrupts an existing snapshot.
  void save_file(const std::string& path) const;

  /// The framed bytes (header + payload), as save_file would write them.
  [[nodiscard]] std::vector<std::uint8_t> framed() const;

 private:
  void tag(field_tag t);
  void raw_u32(std::uint32_t v);
  void raw_u64(std::uint64_t v);
  void begin_vec(field_tag t, std::size_t count);

  std::vector<std::uint8_t> buf_;
};

/// Reads a snapshot payload back, validating every field tag. All failure
/// modes — wrong magic, version, truncation, checksum mismatch, field-type
/// or section-name mismatch — throw contract_violation with a one-line
/// message naming what was expected and what was found.
class reader {
 public:
  /// Wraps a raw payload (as writer::payload() produced).
  explicit reader(std::vector<std::uint8_t> payload);

  /// Validates framed bytes (as writer::framed()/save_file produced) and
  /// returns a reader over the payload.
  [[nodiscard]] static reader from_bytes(
      const std::vector<std::uint8_t>& framed);

  /// Reads and validates `path`.
  [[nodiscard]] static reader from_file(const std::string& path);

  /// Consumes a section marker; throws unless its name is `name`.
  void expect_section(std::string_view name);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> vec_f64();

  template <typename T>
  [[nodiscard]] std::vector<T> vec_int() {
    static_assert(std::is_integral_v<T>);
    const std::uint64_t count = begin_vec(field_tag::vec_i64);
    std::vector<T> v;
    v.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      v.push_back(static_cast<T>(static_cast<std::int64_t>(raw_u64())));
    }
    return v;
  }

  /// Guard helper: reads a u64 and throws unless it equals `expected`
  /// (`what` names the field in the error).
  void expect_u64(std::uint64_t expected, std::string_view what);

  /// Guard helper: reads a string and throws unless it equals `expected`.
  void expect_str(std::string_view expected, std::string_view what);

  /// True once every payload byte has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void expect_tag(field_tag t);
  std::uint64_t raw_u64();
  std::uint64_t begin_vec(field_tag t);
  void need(std::size_t bytes) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Implemented by every component whose mutable run state can be captured:
/// the five discrete competitors, the continuous linear process they embed,
/// event sources, the event queue, and the async driver. `save_state` writes
/// the complete mutable state (plus configuration fingerprints);
/// `restore_state` loads it into a freshly constructed object of the
/// identical configuration, verifying the fingerprints. See
/// docs/ARCHITECTURE.md ("Checkpoint/resume") for how to implement it on a
/// new process.
class checkpointable {
 public:
  virtual ~checkpointable() = default;

  virtual void save_state(writer& w) const = 0;
  virtual void restore_state(reader& r) = 0;
};

/// FNV-1a 64-bit over a byte range (the payload checksum).
[[nodiscard]] std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size);

/// Cross-casts `obj` to checkpointable, or throws a one-line
/// contract_violation naming `what` — the error a caller sees when trying
/// to checkpoint a run built around a non-checkpointable component.
template <typename T>
[[nodiscard]] checkpointable& require_checkpointable(T& obj,
                                                     std::string_view what) {
  auto* c = dynamic_cast<checkpointable*>(&obj);
  if (c == nullptr) {
    throw contract_violation("snapshot: " + std::string(what) +
                             " is not checkpointable");
  }
  return *c;
}

template <typename T>
[[nodiscard]] const checkpointable& require_checkpointable(
    const T& obj, std::string_view what) {
  const auto* c = dynamic_cast<const checkpointable*>(&obj);
  if (c == nullptr) {
    throw contract_violation("snapshot: " + std::string(what) +
                             " is not checkpointable");
  }
  return *c;
}

}  // namespace dlb::snapshot
